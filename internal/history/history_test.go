package history

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/shift"
	"enblogue/internal/stream"
)

// itemAt builds a stream item at hour/minute offsets from base.
func itemAt(base time.Time, hr, mi, id int, tags ...string) *stream.Item {
	return &stream.Item{
		Time:  base.Add(time.Duration(hr)*time.Hour + time.Duration(mi)*time.Minute),
		DocID: fmt.Sprintf("doc-%05d", id),
		Tags:  tags,
	}
}

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func ranking(at time.Time, scored ...float64) core.Ranking {
	r := core.Ranking{At: at}
	for i, s := range scored {
		r.Topics = append(r.Topics, shift.Topic{
			Pair:  pairs.MakeKey(fmt.Sprintf("t%d", i), "x"),
			Score: s,
			At:    at,
		})
	}
	return r
}

func TestRecordAndSpan(t *testing.T) {
	h := New(100)
	if _, to := h.Span(); !to.IsZero() {
		t.Error("empty history has a span")
	}
	for i := 0; i < 5; i++ {
		if err := h.Record(ranking(t0.Add(time.Duration(i)*time.Hour), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 5 {
		t.Errorf("Len = %d", h.Len())
	}
	from, to := h.Span()
	if !from.Equal(t0) || !to.Equal(t0.Add(4*time.Hour)) {
		t.Errorf("Span = %v..%v", from, to)
	}
}

func TestRecordRejectsOutOfOrder(t *testing.T) {
	h := New(10)
	h.Record(ranking(t0.Add(time.Hour), 1))
	if err := h.Record(ranking(t0, 1)); err == nil {
		t.Error("out-of-order Record accepted")
	}
	// Equal timestamps are fine (engine Flush can re-tick at lastSeen).
	if err := h.Record(ranking(t0.Add(time.Hour), 2)); err != nil {
		t.Errorf("equal-time Record rejected: %v", err)
	}
}

func TestEviction(t *testing.T) {
	h := New(3)
	for i := 0; i < 10; i++ {
		h.Record(ranking(t0.Add(time.Duration(i)*time.Hour), float64(i)))
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	from, _ := h.Span()
	if !from.Equal(t0.Add(7 * time.Hour)) {
		t.Errorf("oldest retained = %v", from)
	}
}

// buildHistory records ticks where pair "a+b" scores 1,3,2 and "c+d" scores
// 5 only on the middle tick.
func buildHistory(t *testing.T) *History {
	t.Helper()
	h := New(0)
	ab := pairs.MakeKey("a", "b")
	cd := pairs.MakeKey("c", "d")
	mk := func(at time.Time, abScore float64, withCD bool) core.Ranking {
		r := core.Ranking{At: at}
		r.Topics = append(r.Topics, shift.Topic{Pair: ab, Score: abScore, At: at})
		if withCD {
			r.Topics = append(r.Topics, shift.Topic{Pair: cd, Score: 5, At: at})
		}
		// Keep descending order as the engine produces it.
		if withCD {
			r.Topics[0], r.Topics[1] = r.Topics[1], r.Topics[0]
		}
		return r
	}
	h.Record(mk(t0, 1, false))
	h.Record(mk(t0.Add(time.Hour), 3, true))
	h.Record(mk(t0.Add(2*time.Hour), 2, false))
	return h
}

func TestTopInRangeMax(t *testing.T) {
	h := buildHistory(t)
	top := h.TopInRange(time.Time{}, time.Time{}, 10, MaxScore)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Pair != pairs.MakeKey("c", "d") || top[0].Score != 5 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Score != 3 || top[1].Ticks != 3 {
		t.Errorf("top[1] = %+v", top[1])
	}
	if !top[1].First.Equal(t0) || !top[1].Last.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("a+b bounds = %v..%v", top[1].First, top[1].Last)
	}
}

func TestTopInRangeMeanAndLast(t *testing.T) {
	h := buildHistory(t)
	ab := pairs.MakeKey("a", "b")
	mean := h.TopInRange(time.Time{}, time.Time{}, 10, MeanScore)
	for _, e := range mean {
		if e.Pair == ab && math.Abs(e.Score-2) > 1e-12 {
			t.Errorf("mean(a+b) = %v, want 2", e.Score)
		}
	}
	last := h.TopInRange(time.Time{}, time.Time{}, 10, LastScore)
	for _, e := range last {
		if e.Pair == ab && e.Score != 2 {
			t.Errorf("last(a+b) = %v, want 2", e.Score)
		}
	}
}

func TestTopInRangeBounds(t *testing.T) {
	h := buildHistory(t)
	// Restricting to the first tick excludes c+d entirely.
	top := h.TopInRange(t0, t0.Add(30*time.Minute), 10, MaxScore)
	if len(top) != 1 || top[0].Pair != pairs.MakeKey("a", "b") || top[0].Score != 1 {
		t.Errorf("range-limited top = %+v", top)
	}
	// Different ranges give different rankings — show case 1's promise.
	top2 := h.TopInRange(t0.Add(time.Hour), t0.Add(2*time.Hour), 10, MaxScore)
	if top2[0].Pair != pairs.MakeKey("c", "d") {
		t.Errorf("second-range top = %+v", top2)
	}
	// Empty range.
	if got := h.TopInRange(t0.Add(10*time.Hour), t0.Add(20*time.Hour), 5, MaxScore); got != nil {
		t.Errorf("empty range top = %+v", got)
	}
	// k <= 0.
	if got := h.TopInRange(time.Time{}, time.Time{}, 0, MaxScore); got != nil {
		t.Errorf("k=0 top = %+v", got)
	}
	// Truncation to k.
	if got := h.TopInRange(time.Time{}, time.Time{}, 1, MaxScore); len(got) != 1 {
		t.Errorf("k=1 top = %+v", got)
	}
}

func TestTrajectory(t *testing.T) {
	h := buildHistory(t)
	traj := h.Trajectory(pairs.MakeKey("a", "b"), time.Time{}, time.Time{})
	if len(traj) != 3 {
		t.Fatalf("traj = %+v", traj)
	}
	// Middle tick: c+d (score 5) is first, a+b second.
	wantRanks := []int{0, 1, 0}
	for i, pt := range traj {
		if pt.Rank != wantRanks[i] {
			t.Errorf("tick %d rank = %d, want %d", i, pt.Rank, wantRanks[i])
		}
	}
	traj = h.Trajectory(pairs.MakeKey("no", "pe"), time.Time{}, time.Time{})
	for _, pt := range traj {
		if pt.Rank != -1 {
			t.Errorf("absent pair has rank %d", pt.Rank)
		}
	}
}

func TestAt(t *testing.T) {
	h := buildHistory(t)
	if _, ok := h.At(t0.Add(-time.Minute)); ok {
		t.Error("At before first tick should miss")
	}
	r, ok := h.At(t0.Add(90 * time.Minute))
	if !ok || !r.At.Equal(t0.Add(time.Hour)) {
		t.Errorf("At(90m) = %v, %v", r.At, ok)
	}
	r, _ = h.At(t0.Add(100 * time.Hour))
	if !r.At.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("At(far future) = %v", r.At)
	}
}

func TestAggregateParse(t *testing.T) {
	for _, a := range []Aggregate{MaxScore, MeanScore, LastScore} {
		got, err := ParseAggregate(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAggregate(%q) = %v, %v", a.String(), got, err)
		}
	}
	if got, err := ParseAggregate(""); err != nil || got != MaxScore {
		t.Errorf("empty aggregate = %v, %v", got, err)
	}
	if _, err := ParseAggregate("median"); err == nil {
		t.Error("unknown aggregate accepted")
	}
	if Aggregate(9).String() != "aggregate(9)" {
		t.Errorf("unknown String = %q", Aggregate(9).String())
	}
}

func TestConcurrentRecordAndQuery(t *testing.T) {
	h := New(1000)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			h.Record(ranking(t0.Add(time.Duration(i)*time.Minute), float64(i%7)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			h.TopInRange(time.Time{}, time.Time{}, 5, MaxScore)
			h.Span()
		}
	}()
	wg.Wait()
	if h.Len() != 500 {
		t.Errorf("Len = %d", h.Len())
	}
}

// End-to-end: a real engine's rankings recorded and queried by range.
func TestHistoryWithEngine(t *testing.T) {
	h := New(0)
	e := core.New(core.Config{
		WindowBuckets:    12,
		WindowResolution: time.Hour,
		SeedCount:        10,
		SeedWarmupDocs:   10,
		MinCooccurrence:  2,
		TopK:             5,
		UpOnly:           true,
	})
	// Record every tick through a broker subscription, as a live server
	// (Server.Follow) does.
	sub := e.Subscribe(context.Background(), core.SubBuffer(256))
	recorded := make(chan error, 1)
	go func() {
		defer close(recorded)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			if err := h.Record(r); err != nil {
				recorded <- err
				return
			}
		}
	}()
	// Background, then an event in hour 6.
	id := 0
	for hr := 0; hr < 10; hr++ {
		for mi := 0; mi < 60; mi += 5 {
			id++
			e.Consume(itemAt(t0, hr, mi, id, "news", "politics"))
		}
	}
	for mi := 0; mi < 60; mi += 6 {
		id++
		e.Consume(itemAt(t0, 6, mi, id, "news", "scandal"))
	}
	e.Flush()
	e.Close() // end the subscription so the recorder goroutine finishes
	if err := <-recorded; err != nil {
		t.Fatalf("Record: %v", err)
	}

	if h.Len() == 0 {
		t.Fatal("no ticks recorded")
	}
	// The event pair should top the range covering hours 6-9 but be absent
	// from a range before the event.
	top := h.TopInRange(t0.Add(6*time.Hour), t0.Add(10*time.Hour), 3, MaxScore)
	found := false
	for _, e := range top {
		if e.Pair == pairs.MakeKey("news", "scandal") {
			found = true
		}
	}
	if !found {
		t.Errorf("event pair missing from event range: %+v", top)
	}
	before := h.TopInRange(t0, t0.Add(5*time.Hour), 10, MaxScore)
	for _, e := range before {
		if e.Pair == pairs.MakeKey("news", "scandal") {
			t.Error("event pair present before the event")
		}
	}
}
