// Package baseline implements a TwitterMonitor-style trend detector
// (Mathioudakis & Koudas, SIGMOD 2010), the closest prior system the paper
// compares its approach against: "Their Twitter Monitor system discovers
// topic trends in tweets, by detecting bursts of tags or tag groups. Tag
// groups are formed by clustering co-occurring tags. ... unlike looking
// solely for bursty tags, we detect shifts in tag correlations."
//
// The detector flags individual tags whose arrival rate in the current
// window significantly exceeds their historical expectation, then clusters
// co-bursting tags into groups by windowed co-occurrence. It shares the
// window substrate with enBlogue so head-to-head comparisons isolate the
// algorithmic difference (per-tag bursts vs pair-correlation shifts).
package baseline

import (
	"math"
	"sort"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/window"
)

// Config parameterises a BurstDetector.
type Config struct {
	// Buckets and Resolution define the current-rate window.
	Buckets    int
	Resolution time.Duration
	// Alpha smooths the historical expectation (EWMA over per-tick window
	// counts). Zero means 0.25.
	Alpha float64
	// Threshold is the burst trigger: current/expected must exceed it.
	// Zero means 3.
	Threshold float64
	// MinCount is the minimum windowed count for a burst ("significant").
	// Zero means 5.
	MinCount float64
	// GroupJaccard is the minimum pairwise Jaccard between co-bursting
	// tags for them to share a group. Zero means 0.2.
	GroupJaccard float64
}

func (c Config) withDefaults() Config {
	if c.Buckets == 0 {
		c.Buckets = 48
	}
	if c.Resolution == 0 {
		c.Resolution = time.Hour
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.MinCount <= 0 {
		c.MinCount = 5
	}
	if c.GroupJaccard <= 0 {
		c.GroupJaccard = 0.2
	}
	return c
}

// Burst is one bursty tag at a tick.
type Burst struct {
	Tag string
	// Score is current/expected — how many times over its historical rate
	// the tag is running.
	Score float64
	// Current is the windowed count now; Expected the smoothed history.
	Current  float64
	Expected float64
	At       time.Time
}

// Group is a cluster of co-bursting tags — TwitterMonitor's "topic".
type Group struct {
	// Tags are the member tags, sorted.
	Tags []string
	// Score is the maximum member burst score.
	Score float64
	At    time.Time
}

type tagState struct {
	counter  *window.Counter
	expected *window.EWMA
}

// BurstDetector tracks per-tag rates and detects bursts at tick time. Not
// safe for concurrent use.
type BurstDetector struct {
	cfg     Config
	tags    map[string]*tagState
	cooc    *pairs.Tracker
	now     time.Time
	sinceGC int
	ticks   int
}

// NewBurstDetector returns a detector with the given configuration.
func NewBurstDetector(cfg Config) *BurstDetector {
	c := cfg.withDefaults()
	return &BurstDetector{
		cfg:  c,
		tags: make(map[string]*tagState),
		cooc: pairs.NewTracker(pairs.Config{
			Buckets:    c.Buckets,
			Resolution: c.Resolution,
		}),
	}
}

// Config returns the effective configuration.
func (d *BurstDetector) Config() Config { return d.cfg }

// Observe feeds one document's tag set at time t.
func (d *BurstDetector) Observe(t time.Time, tags []string) {
	if t.After(d.now) {
		d.now = t
	}
	seen := make(map[string]bool, len(tags))
	for _, tag := range tags {
		if tag == "" || seen[tag] {
			continue
		}
		seen[tag] = true
		st, ok := d.tags[tag]
		if !ok {
			st = &tagState{
				counter:  window.NewCounter(d.cfg.Buckets, d.cfg.Resolution),
				expected: window.NewEWMA(d.cfg.Alpha),
			}
			d.tags[tag] = st
		}
		st.counter.Inc(t)
	}
	// Track all-pairs co-occurrence for burst grouping.
	d.cooc.Observe(t, tags, nil)
	d.sinceGC++
	if d.sinceGC >= 4096 {
		d.sweep()
	}
}

func (d *BurstDetector) sweep() {
	d.sinceGC = 0
	for tag, st := range d.tags {
		st.counter.Observe(d.now)
		if st.counter.Value() == 0 && st.expected.Value() < 0.5 {
			delete(d.tags, tag)
		}
	}
}

// ActiveTags returns the number of tracked tags.
func (d *BurstDetector) ActiveTags() int { return len(d.tags) }

// Tick evaluates all tags at time t, returns the bursting ones sorted by
// descending score, and folds the current counts into the historical
// expectation. Call at regular intervals, like the shift detector's ticks.
func (d *BurstDetector) Tick(t time.Time) []Burst {
	if t.After(d.now) {
		d.now = t
	}
	var out []Burst
	for tag, st := range d.tags {
		st.counter.Observe(t)
		cur := st.counter.Value()
		exp := st.expected.Value()
		hadHistory := st.expected.Initialized()
		st.expected.Add(cur)
		if !hadHistory && d.ticks == 0 {
			// The detector's very first tick has no history for anything:
			// seed expectations silently. A tag first evaluated on a later
			// tick, however, is a genuinely NEW keyword — TwitterMonitor's
			// bread and butter — and scores against a zero expectation.
			continue
		}
		// Laplace-style floor keeps brand-new tags from dividing by zero
		// while still letting genuinely new tags burst.
		score := cur / math.Max(exp, 1)
		if cur >= d.cfg.MinCount && score >= d.cfg.Threshold {
			out = append(out, Burst{
				Tag:      tag,
				Score:    score,
				Current:  cur,
				Expected: exp,
				At:       t,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	d.ticks++
	return out
}

// Groups clusters the given bursts into co-occurrence groups: two bursting
// tags join the same group when the Jaccard of their windowed document sets
// reaches GroupJaccard. Connected components become Groups, sorted by
// descending score.
func (d *BurstDetector) Groups(bursts []Burst) []Group {
	n := len(bursts)
	if n == 0 {
		return nil
	}
	// Union-find over burst indices.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	counts := make(map[string]float64, n)
	for _, b := range bursts {
		counts[b.Tag] = b.Current
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := bursts[i].Tag, bursts[j].Tag
			nab := d.cooc.Cooccurrence(pairs.MakeKey(a, b))
			jac := pairs.Jaccard.Compute(nab, counts[a], counts[b], 0)
			if jac >= d.cfg.GroupJaccard {
				union(i, j)
			}
		}
	}
	byRoot := make(map[int]*Group)
	for i, b := range bursts {
		r := find(i)
		g, ok := byRoot[r]
		if !ok {
			g = &Group{At: b.At}
			byRoot[r] = g
		}
		g.Tags = append(g.Tags, b.Tag)
		if b.Score > g.Score {
			g.Score = b.Score
		}
	}
	out := make([]Group, 0, len(byRoot))
	for _, g := range byRoot {
		sort.Strings(g.Tags)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tags[0] < out[j].Tags[0]
	})
	return out
}

// TopicPairs flattens burst groups into tag pairs for head-to-head
// comparison with enBlogue's pair ranking: every within-group pair inherits
// the group score; singleton groups yield no pair.
func TopicPairs(groups []Group) []pairs.Key {
	var out []pairs.Key
	seen := make(map[pairs.Key]bool)
	for _, g := range groups {
		for i := 0; i < len(g.Tags); i++ {
			for j := i + 1; j < len(g.Tags); j++ {
				k := pairs.MakeKey(g.Tags[i], g.Tags[j])
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			}
		}
	}
	return out
}
