package baseline

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"enblogue/internal/pairs"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func newDet() *BurstDetector {
	return NewBurstDetector(Config{
		Buckets:    4,
		Resolution: time.Hour,
		Alpha:      0.5,
		Threshold:  3,
		MinCount:   5,
	})
}

func TestDefaults(t *testing.T) {
	d := NewBurstDetector(Config{})
	cfg := d.Config()
	if cfg.Threshold != 3 || cfg.MinCount != 5 || cfg.Alpha != 0.25 ||
		cfg.GroupJaccard != 0.2 || cfg.Buckets != 48 {
		t.Errorf("defaults = %+v", cfg)
	}
}

// feedSteady observes rate docs per hour of the tag for hours ticks,
// calling Tick after each hour, and returns the last tick's bursts.
func feedSteady(d *BurstDetector, tag string, rate, hours int, start time.Time) ([]Burst, time.Time) {
	var bursts []Burst
	ts := start
	for h := 0; h < hours; h++ {
		for i := 0; i < rate; i++ {
			d.Observe(ts.Add(time.Duration(i)*time.Second), []string{tag})
		}
		ts = ts.Add(time.Hour)
		bursts = d.Tick(ts)
	}
	return bursts, ts
}

func TestSteadyTagDoesNotBurst(t *testing.T) {
	d := newDet()
	bursts, _ := feedSteady(d, "steady", 10, 12, t0)
	if len(bursts) != 0 {
		t.Errorf("steady tag burst: %+v", bursts)
	}
}

func TestSuddenSpikeBursts(t *testing.T) {
	d := newDet()
	_, ts := feedSteady(d, "tag", 2, 8, t0)
	// Spike: 50 docs in the next hour.
	for i := 0; i < 50; i++ {
		d.Observe(ts.Add(time.Duration(i)*time.Second), []string{"tag"})
	}
	bursts := d.Tick(ts.Add(time.Hour))
	if len(bursts) != 1 || bursts[0].Tag != "tag" {
		t.Fatalf("bursts = %+v, want one for tag", bursts)
	}
	if bursts[0].Score < 3 {
		t.Errorf("burst score = %v, want >= threshold", bursts[0].Score)
	}
	if bursts[0].Current < 50 {
		t.Errorf("burst current = %v, want >= 50", bursts[0].Current)
	}
}

func TestFirstSystemTickNeverBursts(t *testing.T) {
	d := newDet()
	for i := 0; i < 100; i++ {
		d.Observe(t0.Add(time.Duration(i)*time.Second), []string{"brandnew"})
	}
	if bursts := d.Tick(t0.Add(time.Hour)); len(bursts) != 0 {
		t.Errorf("first tick produced bursts: %+v", bursts)
	}
	// Second tick with renewed activity: expected is EWMA seeded at ~100;
	// 200-in-window vs 100 = ratio 2 < 3 → no burst; established heavy
	// tags need a real jump.
	for i := 0; i < 100; i++ {
		d.Observe(t0.Add(time.Hour+time.Duration(i)*time.Second), []string{"brandnew"})
	}
	bursts := d.Tick(t0.Add(2 * time.Hour))
	for _, b := range bursts {
		if b.Tag == "brandnew" && b.Score >= 3 {
			t.Errorf("unexpected burst: %+v", b)
		}
	}
}

func TestNewKeywordMidStreamBursts(t *testing.T) {
	d := newDet()
	// Warm the detector with background traffic.
	ts := t0
	for h := 0; h < 4; h++ {
		for i := 0; i < 10; i++ {
			d.Observe(ts.Add(time.Duration(i)*time.Minute), []string{"background"})
		}
		ts = ts.Add(time.Hour)
		d.Tick(ts)
	}
	// A keyword never seen before arrives at volume: TwitterMonitor-style
	// new-topic detection must flag it on its first evaluation.
	for i := 0; i < 20; i++ {
		d.Observe(ts.Add(time.Duration(i)*time.Minute), []string{"breaking"})
	}
	bursts := d.Tick(ts.Add(time.Hour))
	found := false
	for _, b := range bursts {
		if b.Tag == "breaking" {
			found = true
		}
	}
	if !found {
		t.Errorf("new keyword did not burst: %+v", bursts)
	}
}

func TestMinCountSuppressesTinyBursts(t *testing.T) {
	d := newDet() // MinCount 5
	d.Observe(t0, []string{"tiny"})
	d.Tick(t0.Add(time.Hour))
	// 3 docs is a 3x ratio but under MinCount.
	for i := 0; i < 3; i++ {
		d.Observe(t0.Add(time.Hour+time.Duration(i)*time.Second), []string{"tiny"})
	}
	if bursts := d.Tick(t0.Add(2 * time.Hour)); len(bursts) != 0 {
		t.Errorf("tiny burst not suppressed: %+v", bursts)
	}
}

func TestBurstsSortedByScore(t *testing.T) {
	d := NewBurstDetector(Config{
		Buckets: 4, Resolution: time.Hour, Alpha: 0.5, Threshold: 2, MinCount: 2,
	})
	// Two tags with different spike magnitudes.
	feedSteady(d, "small", 2, 6, t0)
	ts := t0.Add(6 * time.Hour)
	feedSteady(d, "big", 2, 6, t0)
	for i := 0; i < 10; i++ {
		d.Observe(ts.Add(time.Duration(i)*time.Second), []string{"small"})
	}
	for i := 0; i < 40; i++ {
		d.Observe(ts.Add(time.Duration(i)*time.Second), []string{"big"})
	}
	bursts := d.Tick(ts.Add(time.Hour))
	if len(bursts) < 2 {
		t.Fatalf("bursts = %+v, want 2", bursts)
	}
	if bursts[0].Tag != "big" || bursts[1].Tag != "small" {
		t.Errorf("burst order = %v,%v want big,small", bursts[0].Tag, bursts[1].Tag)
	}
}

func TestGroupsClusterCooccurringBursts(t *testing.T) {
	d := NewBurstDetector(Config{
		Buckets: 4, Resolution: time.Hour, Alpha: 0.5,
		Threshold: 2, MinCount: 3, GroupJaccard: 0.3,
	})
	// Warm up three tags at low rate.
	ts := t0
	for h := 0; h < 6; h++ {
		d.Observe(ts, []string{"iceland"})
		d.Observe(ts.Add(time.Minute), []string{"volcano"})
		d.Observe(ts.Add(2*time.Minute), []string{"tennis"})
		ts = ts.Add(time.Hour)
		d.Tick(ts)
	}
	// Burst: iceland+volcano co-occur in the same documents; tennis bursts
	// independently.
	for i := 0; i < 20; i++ {
		d.Observe(ts.Add(time.Duration(i)*time.Second), []string{"iceland", "volcano"})
		d.Observe(ts.Add(time.Duration(i)*time.Second), []string{"tennis"})
	}
	bursts := d.Tick(ts.Add(time.Hour))
	if len(bursts) != 3 {
		t.Fatalf("bursts = %+v, want 3", bursts)
	}
	groups := d.Groups(bursts)
	if len(groups) != 2 {
		t.Fatalf("groups = %+v, want 2", groups)
	}
	var joint *Group
	for i := range groups {
		if len(groups[i].Tags) == 2 {
			joint = &groups[i]
		}
	}
	if joint == nil || !reflect.DeepEqual(joint.Tags, []string{"iceland", "volcano"}) {
		t.Errorf("joint group = %+v", groups)
	}
}

func TestGroupsEmpty(t *testing.T) {
	d := newDet()
	if g := d.Groups(nil); g != nil {
		t.Errorf("Groups(nil) = %v", g)
	}
}

func TestTopicPairs(t *testing.T) {
	groups := []Group{
		{Tags: []string{"a", "b", "c"}, Score: 5},
		{Tags: []string{"solo"}, Score: 9},
		{Tags: []string{"a", "b"}, Score: 2}, // duplicate pair a+b
	}
	got := TopicPairs(groups)
	want := []pairs.Key{
		pairs.MakeKey("a", "b"),
		pairs.MakeKey("a", "c"),
		pairs.MakeKey("b", "c"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopicPairs = %v, want %v", got, want)
	}
}

// The key negative result that motivates enBlogue (Figure 1): a correlation
// shift WITHOUT a rate change is invisible to the burst baseline.
func TestCorrelationShiftWithoutBurstIsMissed(t *testing.T) {
	d := NewBurstDetector(Config{
		Buckets: 4, Resolution: time.Hour, Alpha: 0.5, Threshold: 3, MinCount: 5,
	})
	rng := rand.New(rand.NewSource(2))
	ts := t0
	// Phase 1: t1 and t2 appear at constant rates in disjoint documents.
	for h := 0; h < 8; h++ {
		for i := 0; i < 20; i++ {
			d.Observe(ts.Add(time.Duration(i*60+rng.Intn(50))*time.Second), []string{"t1"})
		}
		for i := 0; i < 6; i++ {
			d.Observe(ts.Add(time.Duration(i*300+rng.Intn(200))*time.Second), []string{"t2"})
		}
		ts = ts.Add(time.Hour)
		d.Tick(ts)
	}
	// Phase 2: same total rates, but now t2's documents all carry t1 too —
	// a pure correlation shift.
	var bursts []Burst
	for h := 0; h < 3; h++ {
		for i := 0; i < 14; i++ {
			d.Observe(ts.Add(time.Duration(i*60)*time.Second), []string{"t1"})
		}
		for i := 0; i < 6; i++ {
			d.Observe(ts.Add(time.Duration(i*300)*time.Second), []string{"t1", "t2"})
		}
		ts = ts.Add(time.Hour)
		bursts = append(bursts, d.Tick(ts)...)
	}
	if len(bursts) != 0 {
		t.Errorf("burst baseline flagged a pure correlation shift: %+v", bursts)
	}
}

func TestSweepBoundsMemory(t *testing.T) {
	d := NewBurstDetector(Config{Buckets: 2, Resolution: time.Minute})
	ts := t0
	for i := 0; i < 10000; i++ {
		d.Observe(ts, []string{fmt.Sprintf("ephemeral%d", i)})
		ts = ts.Add(time.Second)
	}
	if d.ActiveTags() >= 10000 {
		t.Errorf("ActiveTags = %d, sweep never ran", d.ActiveTags())
	}
}

func BenchmarkObserveTick(b *testing.B) {
	d := NewBurstDetector(Config{Buckets: 48, Resolution: time.Hour})
	rng := rand.New(rand.NewSource(4))
	docs := make([][]string, 256)
	for i := range docs {
		for j := 0; j < 3; j++ {
			docs[i] = append(docs[i], fmt.Sprintf("tag%d", rng.Intn(300)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := t0.Add(time.Duration(i) * time.Second)
		d.Observe(ts, docs[i%len(docs)])
		if i%1000 == 999 {
			d.Tick(ts)
		}
	}
}
