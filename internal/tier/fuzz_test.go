package tier

import "testing"

// FuzzTierPromotion drives one Tail through an arbitrary interleaving of
// demotions, estimates, candidate reads, and removals decoded from the fuzz
// input, and checks the invariants promotion relies on:
//
//   - no operation panics, whatever the time sequence (backwards, jumps);
//   - an estimate read in the same generation as a demotion is at least the
//     demoted count (estimates are upper bounds, never under);
//   - candidates always carry estimates strictly above the floor.
func FuzzTierPromotion(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		seed = append(seed, byte(i), 0xFF, byte(i*37), 1, 2, 3, 4, 5)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tl := New(Config{Epsilon: 0.05, Delta: 0.05, TopK: 8, Span: 1000})
		var buf []Candidate
		// Each op consumes 8 bytes: [op][now][key][count/floor][4 spare].
		for len(data) >= 8 {
			op, now := data[0]%4, int64(data[1])*250 // crosses generations
			key, amt := uint64(data[2]), uint64(data[3])
			data = data[8:]
			switch op {
			case 0:
				tl.Demote(now, key, amt)
				if amt > 0 {
					if est := tl.Estimate(now, key); est < amt {
						t.Fatalf("estimate %d < just-demoted count %d (key %d, now %d)",
							est, amt, key, now)
					}
				}
			case 1:
				tl.Estimate(now, key)
			case 2:
				buf = tl.AppendCandidates(now, amt, buf[:0])
				for _, c := range buf {
					if c.Est <= amt {
						t.Fatalf("candidate %d carries est %d <= floor %d", c.Key, c.Est, amt)
					}
				}
			case 3:
				tl.Remove(key)
			}
		}
		tl.Stats()
	})
}
