// Package tier implements the cold tier of the engine's two-tier pair
// memory model (DESIGN.md §12). The hot tier is the exact, arena-backed
// pair tracker in internal/pairs; it stays bounded by MaxPairs eviction.
// Before this tier existed, eviction silently forgot the long tail: an
// evicted pair that re-emerged restarted from zero. Now every evicted pair
// is demoted here, into
//
//   - a windowed Count-Min sketch keyed on the packed pairs.Key uint64 (no
//     string is formed or hashed on the demotion path), whose estimates are
//     upper bounds within an εN additive error, and
//   - a weighted Space-Saving summary of the heaviest tail pairs — the
//     promotion candidate set, O(TopK) space no matter how many distinct
//     pairs pass through.
//
// Both structures age in two generations keyed by event time (generation =
// eventNanos / span, span = the co-occurrence window span), so tail mass
// decays on the same schedule as the exact tier's windowed counters instead
// of accumulating forever.
//
// At tick time the pair tracker asks each shard's Tail for candidates whose
// estimated count crosses the current admission floor (the windowed count
// of the largest pair the last over-budget sweep evicted) and re-inserts
// them into the exact tier, seeding their counters from the sketch estimate
// and flagging them approximate. Estimates never underestimate — Count-Min
// rows only ever add mass, and when a promoted pair is evicted again the
// tracker demotes only the excess its counter earned beyond the seed (the
// seed's mass never left the sketch, so re-adding it would compound the
// estimate on every promote→evict cycle) — so a seeded counter is an upper
// bound on the pair's true windowed co-occurrence, up to the generation
// granularity of decay, and admission errs toward keeping potentially
// emerging pairs.
//
// Each tracker shard owns one Tail guarded by its own mutex under the
// lockdiscipline class `tier` (order 45): demotion acquires it while
// holding the sweep lock (pairsSweep, 40) after all shard locks are
// released, and promotion acquires it before taking shard locks
// (pairsShard, 50) — both ascending.
package tier

import (
	"fmt"
	"sync"

	"enblogue/internal/sketch"
)

// Config sizes one Tail. The zero value of Epsilon/Delta/TopK selects the
// defaults below; Span must be positive.
type Config struct {
	// Epsilon is the Count-Min additive-error fraction: estimates exceed
	// true windowed tail mass by at most Epsilon × N with probability
	// 1−Delta, where N is the live windowed mass. Default 0.01.
	Epsilon float64
	// Delta is the Count-Min failure probability. Default 0.01.
	Delta float64
	// TopK is the Space-Saving summary capacity — the maximum number of
	// promotion candidates remembered per shard. Default 512.
	TopK int
	// Span is the generation span in nanoseconds; pairs demoted more than
	// two spans ago have fully decayed. The pair tracker passes its window
	// span so tail decay matches exact-counter decay.
	Span int64
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 0.01
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		c.Delta = 0.01
	}
	if c.TopK < 1 {
		c.TopK = 512
	}
	return c
}

// Candidate is a tail pair whose estimate crossed the admission floor,
// carrying the upper-bound windowed estimate the exact tier seeds from.
type Candidate struct {
	Key uint64 // packed pairs.Key
	Est uint64
}

// Stats is a point-in-time view of one Tail.
type Stats struct {
	Pairs   int     // distinct pairs in the live heavy-hitter summaries
	Mass    uint64  // live windowed sketch mass — the N in the εN bound
	Epsilon float64 // configured additive-error fraction
	Demoted uint64  // lifetime demotions absorbed
}

// Tail is one shard's cold tier. All methods are safe for concurrent use;
// the internal mutex belongs to the lockdiscipline class `tier` (order 45).
type Tail struct {
	//enblogue:lock tier 45
	mu   sync.Mutex
	span int64
	cm   *sketch.WindowedCountMin
	// cur and prev are the two summary generations, rotated in lockstep
	// with the sketch generations: candidates are drawn from both, so a
	// heavy tail pair stays promotable for at least one full span after its
	// last demotion.
	cur, prev *sketch.TopKU64
	gen       int64
	started   bool
	demoted   uint64
}

// New returns a Tail for the given configuration. It panics if cfg.Span is
// not positive — the pair tracker always knows its window span.
func New(cfg Config) *Tail {
	cfg = cfg.withDefaults()
	if cfg.Span <= 0 {
		panic(fmt.Sprintf("tier: generation span %d must be positive", cfg.Span))
	}
	return &Tail{
		span: cfg.Span,
		cm:   sketch.NewWindowedCountMinWithError(cfg.Epsilon, cfg.Delta),
		cur:  sketch.NewTopKU64(cfg.TopK),
		prev: sketch.NewTopKU64(cfg.TopK),
	}
}

// advanceLocked rotates the generations to the one containing nowNano.
// Backwards moves are ignored: a stale reader must not clear newer mass.
// Callers must hold t.mu.
//
//enblogue:requires tier
func (t *Tail) advanceLocked(nowNano int64) {
	gen := nowNano / t.span
	if t.started && gen <= t.gen {
		return
	}
	switch {
	case !t.started:
		// First demotion defines the epoch; nothing to age out.
	case gen == t.gen+1:
		t.cur, t.prev = t.prev, t.cur
		t.cur.Reset()
	default: // jumped ≥ 2 spans: everything has decayed
		t.cur.Reset()
		t.prev.Reset()
	}
	t.gen = gen
	t.started = true
	t.cm.Advance(gen)
}

// Demote absorbs one pair evicted from the exact tier at event time
// nowNano, carrying its windowed co-occurrence count. Zero-count demotions
// are ignored (nothing to remember).
//
//enblogue:acquires tier
//enblogue:hotpath
func (t *Tail) Demote(nowNano int64, key uint64, count uint64) {
	if count == 0 {
		return
	}
	t.mu.Lock()
	t.advanceLocked(nowNano)
	t.cm.AddU64(key, count)
	t.cur.Add(key, count)
	t.demoted++
	t.mu.Unlock()
}

// Estimate returns the upper-bound windowed estimate for key at event time
// nowNano: the Count-Min mass over the live generations, or zero if the
// tail has absorbed nothing.
//
//enblogue:acquires tier
func (t *Tail) Estimate(nowNano int64, key uint64) uint64 {
	t.mu.Lock()
	t.advanceLocked(nowNano)
	est := t.cm.EstimateU64(key)
	t.mu.Unlock()
	return est
}

// AppendCandidates appends every summary pair whose windowed estimate
// strictly exceeds floor, in deterministic slot order (callers wanting rank
// order sort the result). The estimate attached is the Count-Min one — the
// value the exact tier seeds from — not the summary's own count. Appending
// into a caller-owned buffer keeps the tick-time read allocation-free once
// the buffer has grown.
//
//enblogue:acquires tier
func (t *Tail) AppendCandidates(nowNano int64, floor uint64, buf []Candidate) []Candidate {
	t.mu.Lock()
	t.advanceLocked(nowNano)
	for i := 0; i < t.cur.Len(); i++ {
		e := t.cur.At(i)
		if est := t.cm.EstimateU64(e.Key); est > floor {
			buf = append(buf, Candidate{Key: e.Key, Est: est})
		}
	}
	for i := 0; i < t.prev.Len(); i++ {
		e := t.prev.At(i)
		if t.cur.Contains(e.Key) {
			continue
		}
		if est := t.cm.EstimateU64(e.Key); est > floor {
			buf = append(buf, Candidate{Key: e.Key, Est: est})
		}
	}
	t.mu.Unlock()
	return buf
}

// Remove drops key from the heavy-hitter summaries after promotion, so it
// cannot be promoted again until it is demoted again. Its Count-Min mass
// remains until it rotates out — estimates stay upper bounds.
//
//enblogue:acquires tier
func (t *Tail) Remove(key uint64) {
	t.mu.Lock()
	t.cur.Remove(key)
	t.prev.Remove(key)
	t.mu.Unlock()
}

// Stats returns a point-in-time view of the tail.
//
//enblogue:acquires tier
func (t *Tail) Stats() Stats {
	t.mu.Lock()
	pairs := t.cur.Len()
	for i := 0; i < t.prev.Len(); i++ {
		if !t.cur.Contains(t.prev.At(i).Key) {
			pairs++
		}
	}
	s := Stats{
		Pairs:   pairs,
		Mass:    t.cm.Mass(),
		Epsilon: t.cm.Epsilon(),
		Demoted: t.demoted,
	}
	t.mu.Unlock()
	return s
}
