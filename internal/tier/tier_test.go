package tier

import (
	"math/rand"
	"sort"
	"testing"
)

const span = int64(1_000_000) // small generation span for direct control

func newTail(t testing.TB, topK int) *Tail {
	t.Helper()
	return New(Config{Epsilon: 0.01, Delta: 0.01, TopK: topK, Span: span})
}

func TestTailDemoteThenEstimateIsUpperBound(t *testing.T) {
	tl := newTail(t, 8)
	tl.Demote(10, 42, 7)
	tl.Demote(20, 42, 3)
	if est := tl.Estimate(30, 42); est < 10 {
		t.Fatalf("estimate %d underestimates true demoted mass 10", est)
	}
	if est := tl.Estimate(30, 99); est != 0 {
		t.Fatalf("never-demoted key estimates %d, want 0", est)
	}
}

func TestTailZeroCountDemotionIgnored(t *testing.T) {
	tl := newTail(t, 8)
	tl.Demote(10, 42, 0)
	if s := tl.Stats(); s.Pairs != 0 || s.Mass != 0 || s.Demoted != 0 {
		t.Fatalf("zero-count demotion left state: %+v", s)
	}
}

func TestTailCandidatesRespectFloor(t *testing.T) {
	tl := newTail(t, 8)
	tl.Demote(10, 1, 5)
	tl.Demote(10, 2, 20)
	tl.Demote(10, 3, 50)

	got := tl.AppendCandidates(10, 20, nil)
	keys := map[uint64]uint64{}
	for _, c := range got {
		keys[c.Key] = c.Est
	}
	// Strict floor: key 3 must qualify, key 1 must not. Key 2's estimate may
	// exceed 20 only through sketch collision slack, so assert just the
	// certain cases.
	if _, ok := keys[3]; !ok {
		t.Fatalf("key 3 (est >= 50) missing above floor 20: %v", got)
	}
	if _, ok := keys[1]; ok && keys[1] <= 20 {
		t.Fatalf("key 1 with est %d <= floor 20 offered as candidate", keys[1])
	}
	for _, c := range got {
		if c.Est <= 20 {
			t.Fatalf("candidate %d carries est %d <= floor", c.Key, c.Est)
		}
	}
}

func TestTailRemoveDropsCandidate(t *testing.T) {
	tl := newTail(t, 8)
	tl.Demote(10, 7, 100)
	if got := tl.AppendCandidates(10, 0, nil); len(got) != 1 || got[0].Key != 7 {
		t.Fatalf("candidates before removal: %v", got)
	}
	tl.Remove(7)
	if got := tl.AppendCandidates(10, 0, nil); len(got) != 0 {
		t.Fatalf("removed key still a candidate: %v", got)
	}
	// The Count-Min mass survives removal: estimates stay upper bounds.
	if est := tl.Estimate(10, 7); est < 100 {
		t.Fatalf("estimate %d dropped below demoted mass after removal", est)
	}
}

func TestTailSurvivesOneGenerationThenDecays(t *testing.T) {
	tl := newTail(t, 8)
	tl.Demote(0, 7, 100) // generation 0

	// One span later the pair is in prev: still estimable, still a candidate.
	if est := tl.Estimate(span, 7); est < 100 {
		t.Fatalf("estimate %d lost mass after one rotation", est)
	}
	if got := tl.AppendCandidates(span, 0, nil); len(got) != 1 || got[0].Key != 7 {
		t.Fatalf("pair not promotable one span after demotion: %v", got)
	}

	// Two spans later everything has decayed.
	if est := tl.Estimate(2*span, 7); est != 0 {
		t.Fatalf("estimate %d survived two rotations, want 0", est)
	}
	if s := tl.Stats(); s.Pairs != 0 || s.Mass != 0 {
		t.Fatalf("stats not empty after decay: %+v", s)
	}
}

func TestTailBackwardsTimeIgnored(t *testing.T) {
	tl := newTail(t, 8)
	tl.Demote(2*span, 7, 100) // generation 2
	// A stale reader at generation 0 must not clear newer mass.
	if est := tl.Estimate(0, 7); est < 100 {
		t.Fatalf("stale read cleared mass: estimate %d", est)
	}
	if est := tl.Estimate(2*span, 7); est < 100 {
		t.Fatalf("mass gone after stale read: estimate %d", est)
	}
}

func TestTailStats(t *testing.T) {
	tl := newTail(t, 8)
	tl.Demote(0, 1, 10)
	tl.Demote(0, 2, 20)
	s := tl.Stats()
	if s.Pairs != 2 || s.Mass != 30 || s.Demoted != 2 {
		t.Fatalf("stats = %+v, want 2 pairs, mass 30, 2 demotions", s)
	}
	if s.Epsilon <= 0 || s.Epsilon > 0.01 {
		t.Fatalf("epsilon %v outside (0, 0.01]", s.Epsilon)
	}
}

func TestNewPanicsWithoutSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a zero span")
		}
	}()
	New(Config{})
}

// The tier extends the sketch cross-validation to packed-key demotion: on a
// Zipf-skewed eviction stream confined to one generation, every estimate
// must bracket the true demoted mass within the εN design bound, and the
// heavy-hitter summary must surface the true head as candidates.
func TestTailEstimatesWithinEpsilonOfTruth(t *testing.T) {
	tl := New(Config{Epsilon: 0.005, Delta: 0.01, TopK: 64, Span: 1 << 40})
	rng := rand.New(rand.NewSource(17))
	zipf := rand.NewZipf(rng, 1.6, 1, 4999)

	truth := map[uint64]uint64{}
	var mass uint64
	const n = 30000
	for i := 0; i < n; i++ {
		// Packed keys as the tracker produces them: two interned IDs.
		key := zipf.Uint64()<<32 | zipf.Uint64()
		w := uint64(rng.Intn(3) + 1)
		tl.Demote(int64(i), key, w)
		truth[key] += w
		mass += w
	}

	if s := tl.Stats(); s.Mass != mass {
		t.Fatalf("sketch mass %d, want %d", s.Mass, mass)
	}
	slack := uint64(0.005*float64(mass)) + 1
	bad := 0
	for key, want := range truth {
		got := tl.Estimate(int64(n), key)
		if got < want {
			t.Fatalf("tail underestimated %#x: %d < %d", key, got, want)
		}
		if got > want+slack {
			bad++
		}
	}
	// delta = 0.01 per key: a few misses over thousands of keys are in
	// contract, a systematic excess is not.
	if limit := len(truth) / 20; bad > limit {
		t.Errorf("%d/%d keys exceed the epsilon bound (limit %d)", bad, len(truth), limit)
	}

	// The true top candidates must all surface above a floor below the head.
	type kv struct {
		k, v uint64
	}
	var byCount []kv
	for k, v := range truth {
		byCount = append(byCount, kv{k, v})
	}
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].v != byCount[j].v {
			return byCount[i].v > byCount[j].v
		}
		return byCount[i].k < byCount[j].k
	})
	floor := byCount[9].v // admit everything at least as heavy as true #10
	cands := map[uint64]bool{}
	for _, c := range tl.AppendCandidates(int64(n), floor, nil) {
		cands[c.Key] = true
	}
	for _, e := range byCount[:9] {
		if !cands[e.k] {
			t.Errorf("true heavy hitter %#x (count %d) not offered above floor %d", e.k, e.v, floor)
		}
	}
}

// Candidate order must be deterministic for identical demotion histories —
// the promotion path feeds ranking-visible state from it.
func TestTailCandidatesDeterministic(t *testing.T) {
	build := func() []Candidate {
		tl := newTail(t, 16)
		for i := 0; i < 200; i++ {
			tl.Demote(int64(i), uint64(i%23)+1, uint64(i%7)+1)
		}
		return tl.AppendCandidates(200, 2, nil)
	}
	want := build()
	for run := 0; run < 10; run++ {
		got := build()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d candidates, want %d", run, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d: candidate %d = %+v, want %+v", run, i, got[i], want[i])
			}
		}
	}
}
