package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternDenseAndStable(t *testing.T) {
	var tb Table
	ids := make(map[uint32]string)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("tag%d", i)
		id := tb.Intern(s)
		if id != uint32(i) {
			t.Fatalf("Intern(%q) = %d, want dense %d", s, id, i)
		}
		ids[id] = s
	}
	// Re-interning returns the same IDs.
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("tag%d", i)
		if id := tb.Intern(s); ids[id] != s {
			t.Fatalf("re-Intern(%q) = %d, want stable", s, id)
		}
	}
	for id, s := range ids {
		if got := tb.Lookup(id); got != s {
			t.Fatalf("Lookup(%d) = %q, want %q", id, got, s)
		}
	}
	if tb.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tb.Len())
	}
}

// Find must resolve both promoted and still-pending strings, and must
// never assign an ID itself.
func TestFindDoesNotIntern(t *testing.T) {
	var tb Table
	if _, ok := tb.Find("ghost"); ok {
		t.Fatal("Find invented an ID")
	}
	if tb.Len() != 0 {
		t.Fatalf("Find interned: Len = %d", tb.Len())
	}
	id := tb.Intern("real") // pending, not yet promoted
	if got, ok := tb.Find("real"); !ok || got != id {
		t.Fatalf("Find(pending) = %d,%v want %d,true", got, ok, id)
	}
	for i := 0; i < 100; i++ { // force promotion
		tb.Intern(fmt.Sprintf("bulk%d", i))
	}
	if got, ok := tb.Find("real"); !ok || got != id {
		t.Fatalf("Find(promoted) = %d,%v want %d,true", got, ok, id)
	}
}

func TestLookupUnknown(t *testing.T) {
	var tb Table
	if got := tb.Lookup(0); got != "" {
		t.Fatalf("Lookup on empty table = %q", got)
	}
	tb.Intern("a")
	if got := tb.Lookup(99); got != "" {
		t.Fatalf("Lookup(99) = %q, want empty", got)
	}
}

// A freshly interned ID must resolve immediately, even before promotion
// into the lock-free snapshot.
func TestLookupBeforePromotion(t *testing.T) {
	var tb Table
	id := tb.Intern("solo")
	if got := tb.Lookup(id); got != "solo" {
		t.Fatalf("Lookup(just-interned) = %q", got)
	}
}

func TestInternConcurrent(t *testing.T) {
	var tb Table
	const workers, n = 8, 2000
	var wg sync.WaitGroup
	got := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]uint32, n)
			for i := 0; i < n; i++ {
				got[w][i] = tb.Intern(fmt.Sprintf("t%d", i))
			}
		}(w)
	}
	wg.Wait()
	// Every worker must agree on every string's ID.
	for w := 1; w < workers; w++ {
		for i := 0; i < n; i++ {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d: id[%d] = %d, want %d", w, i, got[w][i], got[0][i])
			}
		}
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	for i := 0; i < n; i++ {
		if tb.Lookup(got[0][i]) != fmt.Sprintf("t%d", i) {
			t.Fatalf("Lookup(%d) mismatch", got[0][i])
		}
	}
}

// Steady-state interning of an already-promoted vocabulary must not
// allocate: the hot ingest path relies on it.
func TestInternSteadyStateZeroAlloc(t *testing.T) {
	var tb Table
	words := make([]string, 256)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	for range [4]int{} { // intern enough times to force promotions
		for _, w := range words {
			tb.Intern(w)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, w := range words {
			tb.Intern(w)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Intern allocates %.1f per run, want 0", avg)
	}
}
