// Package intern implements a process-wide append-only symbol table that
// maps tag strings to dense uint32 IDs and back. The engine's hot path
// (candidate-pair generation, co-occurrence counting, shift detection) works
// entirely in IDs — a pair key becomes one packed uint64 instead of two
// heap-allocated strings — and recovers the strings only at the boundaries
// where rankings are rendered or eviction ties are broken.
//
// The table is lock-amortised: lookups of already-interned strings read an
// immutable snapshot map through an atomic pointer and take no lock at all.
// Only a miss takes the mutex, appends to a small pending map, and — once
// the pending map has grown past a fraction of the snapshot — promotes
// pending entries into a fresh snapshot. Promotions copy the map O(n) but
// are geometrically spaced, so the amortised cost per distinct string is
// O(1) and a stream that has seen its vocabulary runs entirely lock-free.
//
// IDs are assigned densely in first-intern order and are never reused or
// freed: the table's memory grows with the distinct-tag vocabulary of the
// whole stream, not with the sliding window. That is a deliberate trade —
// eviction would invalidate packed keys — and it is the one structure the
// MaxPairs/window budgets do not bound, so a deployment ingesting
// unbounded one-off tags (spam hashtags, raw IDs) should normalise or
// drop such tags upstream before they reach the engine.
package intern

import (
	"sync"
	"sync/atomic"
)

// Table is one symbol table. The zero value is ready to use. Safe for
// concurrent use.
type Table struct {
	// snapshot is the immutable read view: a map from string to ID plus the
	// id→string slice prefix it covers. Reads load it atomically and never
	// lock. Writers replace it wholesale under mu.
	snapshot atomic.Pointer[snapshot]

	// mu guards pending and byID writes; it is the innermost lock in the
	// process — Intern is called from the pair trackers' locked paths.
	//
	//enblogue:lock intern 90
	mu      sync.Mutex
	pending map[string]uint32 // interned since the last promotion
	byID    []string          // authoritative id → string, append-only
}

// snapshot is an immutable (map, slice-header) pair. The byID backing array
// is shared with the authoritative slice: appends past len are invisible to
// holders of this header, and promotion republishes a longer header only
// after the new elements are written (the atomic store orders them).
type snapshot struct {
	ids  map[string]uint32
	byID []string
}

var emptySnapshot = &snapshot{ids: map[string]uint32{}}

func (t *Table) load() *snapshot {
	if s := t.snapshot.Load(); s != nil {
		return s
	}
	return emptySnapshot
}

// Intern returns the dense ID of s, assigning the next free ID on first
// sight. The fast path — s already promoted into the snapshot — is
// lock-free.
func (t *Table) Intern(s string) uint32 {
	snap := t.load()
	if id, ok := snap.ids[s]; ok {
		return id
	}
	return t.internSlow(s)
}

// Find returns the ID of s if it has already been interned, without
// assigning one. Read paths that merely index by ID (the engine's tick-time
// tag-count snapshot) use Find so that ID assignment happens only on the
// ingest path, in first-seen stream order — the property that makes shard
// assignment reproducible across replays of the same stream.
//
//enblogue:acquires intern
func (t *Table) Find(s string) (uint32, bool) {
	if id, ok := t.load().ids[s]; ok {
		return id, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.pending[s]
	return id, ok
}

// internSlow handles snapshot misses: recently interned strings still in
// pending, and genuinely new strings.
//
//enblogue:acquires intern
func (t *Table) internSlow(s string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check under the lock: a racing Intern may have promoted or added s.
	if id, ok := t.load().ids[s]; ok {
		return id
	}
	if id, ok := t.pending[s]; ok {
		return id
	}
	if t.pending == nil {
		t.pending = make(map[string]uint32)
	}
	id := uint32(len(t.byID))
	t.byID = append(t.byID, s)
	t.pending[s] = id
	// Promote once pending outgrows a quarter of the snapshot (plus a floor
	// so tiny tables don't churn): copying is O(n) but geometrically spaced,
	// amortised O(1) per insert.
	if snap := t.load(); len(t.pending) >= len(snap.ids)/4+16 {
		ids := make(map[string]uint32, len(snap.ids)+len(t.pending))
		//enblogue:unordered map-to-map copy; inserting (string, id) pairs into the new snapshot is commutative
		for k, v := range snap.ids {
			ids[k] = v
		}
		//enblogue:unordered map-to-map copy of disjoint pending entries; insertion order is immaterial
		for k, v := range t.pending {
			ids[k] = v
		}
		t.snapshot.Store(&snapshot{ids: ids, byID: t.byID})
		t.pending = make(map[string]uint32)
	}
	return id
}

// Lookup returns the string with the given ID, or "" when the ID has never
// been assigned. Looking up an ID that was just interned is always valid,
// from any goroutine that learned the ID.
//
//enblogue:acquires intern
func (t *Table) Lookup(id uint32) string {
	if s := t.load(); int(id) < len(s.byID) {
		return s.byID[id]
	}
	// The ID may be newer than the snapshot (still pending): consult the
	// authoritative slice under the lock.
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < len(t.byID) {
		return t.byID[id]
	}
	return ""
}

// Len returns the number of interned strings.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// Tags is the process-wide table used for tag symbols. pairs.Key packs two
// of its IDs into one uint64; keeping the table global lets a bare Key
// render itself without carrying a table pointer.
var Tags Table

// Intern interns s in the process-wide tag table.
func Intern(s string) uint32 { return Tags.Intern(s) }

// Find looks s up in the process-wide tag table without interning it.
func Find(s string) (uint32, bool) { return Tags.Find(s) }

// Lookup resolves an ID from the process-wide tag table.
func Lookup(id uint32) string { return Tags.Lookup(id) }
