package source

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/stream"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func TestDocumentItemRoundTrip(t *testing.T) {
	d := Document{
		Time: t0, ID: "d1",
		Tags: []string{"a", "b"}, Entities: []string{"e"},
		Text: "hello", Source: "test",
	}
	it := d.Item()
	back := FromItem(it)
	if !reflect.DeepEqual(d, back) {
		t.Errorf("round trip: %+v != %+v", d, back)
	}
	// Item owns copies.
	it.Tags[0] = "mutated"
	if d.Tags[0] != "a" {
		t.Error("Item shares tag slice with document")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	docs := []Document{
		{Time: t0, ID: "a", Tags: []string{"x"}},
		{Time: t0.Add(time.Hour), ID: "b", Tags: []string{"y", "z"}, Text: "τ"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, docs); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadJSONL(&buf, true)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadJSONL: %v skipped=%d", err, skipped)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].Text != "τ" {
		t.Errorf("round trip = %+v", got)
	}
	if !got[0].Time.Equal(t0) {
		t.Errorf("time round trip = %v", got[0].Time)
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	in := `{"id":"ok1","time":"2011-06-12T00:00:00Z"}
not json at all
{"id":"ok2","time":"2011-06-12T01:00:00Z"}
`
	docs, skipped, err := ReadJSONL(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || skipped != 1 {
		t.Errorf("lenient read: %d docs, %d skipped", len(docs), skipped)
	}
	_, _, err = ReadJSONL(strings.NewReader(in), true)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("strict read error = %v, want line 2 mention", err)
	}
}

func TestSortDocs(t *testing.T) {
	docs := []Document{
		{Time: t0.Add(time.Hour), ID: "b"},
		{Time: t0, ID: "z"},
		{Time: t0, ID: "a"},
	}
	SortDocs(docs)
	ids := []string{docs[0].ID, docs[1].ID, docs[2].ID}
	if !reflect.DeepEqual(ids, []string{"a", "z", "b"}) {
		t.Errorf("sorted = %v", ids)
	}
}

func TestReplayerFastPath(t *testing.T) {
	docs := []Document{
		{Time: t0, ID: "1"},
		{Time: t0.Add(time.Hour), ID: "2"},
	}
	r := &Replayer{Docs: docs}
	var got []string
	start := time.Now()
	err := r.Run(context.Background(), func(it *stream.Item) { got = append(got, it.DocID) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Errorf("replayed = %v", got)
	}
	if time.Since(start) > time.Second {
		t.Error("fast path slept")
	}
}

func TestReplayerTimeLapseSleeps(t *testing.T) {
	docs := []Document{
		{Time: t0, ID: "1"},
		{Time: t0.Add(time.Second), ID: "2"},
	}
	r := &Replayer{Docs: docs, Speedup: 20} // 1s gap → 50ms sleep
	start := time.Now()
	if err := r.Run(context.Background(), func(*stream.Item) {}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Errorf("time-lapse replay too fast: %v", el)
	}
}

func TestReplayerMaxSleepCap(t *testing.T) {
	docs := []Document{
		{Time: t0, ID: "1"},
		{Time: t0.Add(240 * time.Hour), ID: "2"}, // ten-day gap
	}
	r := &Replayer{Docs: docs, Speedup: 1e6, MaxSleep: 50 * time.Millisecond}
	start := time.Now()
	if err := r.Run(context.Background(), func(*stream.Item) {}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("MaxSleep cap not applied: %v", el)
	}
}

func TestReplayerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Replayer{Docs: []Document{{Time: t0, ID: "1"}}}
	if err := r.Run(ctx, func(*stream.Item) {}); err != context.Canceled {
		t.Errorf("err = %v, want Canceled", err)
	}
}

func TestEventHelpers(t *testing.T) {
	e := Event{
		Name: "x", Tags: [2]string{"b", "a"},
		Start: t0, Duration: time.Hour,
	}
	if e.Pair() != pairs.MakeKey("a", "b") {
		t.Errorf("Pair = %v", e.Pair())
	}
	if !e.Active(t0) || !e.Active(t0.Add(59*time.Minute)) {
		t.Error("Active inside span = false")
	}
	if e.Active(t0.Add(time.Hour)) || e.Active(t0.Add(-time.Minute)) {
		t.Error("Active outside span = true")
	}
	truth := TruthPairs([]Event{e})
	if !truth[pairs.MakeKey("a", "b")] || len(truth) != 1 {
		t.Errorf("TruthPairs = %v", truth)
	}
}

func TestGenerateArchiveDeterministic(t *testing.T) {
	cfg := ArchiveConfig{Seed: 7, Days: 3, DocsPerDay: 50}
	a := GenerateArchive(cfg)
	b := GenerateArchive(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different archives")
	}
	c := GenerateArchive(ArchiveConfig{Seed: 8, Days: 3, DocsPerDay: 50})
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical archives")
	}
}

func TestGenerateArchiveShape(t *testing.T) {
	start := t0
	events := HistoricEvents(start)
	docs := GenerateArchive(ArchiveConfig{
		Seed: 1, Start: start, Days: 25, DocsPerDay: 100, Events: events,
	})
	if len(docs) < 2500 {
		t.Fatalf("archive has %d docs, want >= 2500", len(docs))
	}
	// Sorted by time.
	if !sort.SliceIsSorted(docs, func(i, j int) bool {
		return docs[i].Time.Before(docs[j].Time)
	}) {
		t.Error("archive not time-sorted")
	}
	// All docs inside period, tagged, with category among defaults or event tags.
	cats := map[string]bool{}
	for _, c := range DefaultCategories {
		cats[c] = true
	}
	eventDocs := 0
	for _, d := range docs {
		if d.Time.Before(start) || d.Time.After(start.Add(26*24*time.Hour)) {
			t.Fatalf("doc %s outside period: %v", d.ID, d.Time)
		}
		if len(d.Tags) == 0 {
			t.Fatalf("doc %s has no tags", d.ID)
		}
		if strings.HasPrefix(d.ID, "evt") {
			eventDocs++
		}
	}
	// Expect roughly Σ rate·hours event docs: 6*72 + 5*96 + 8*48 = 1296.
	if eventDocs < 1000 || eventDocs > 1600 {
		t.Errorf("event docs = %d, want ≈1296", eventDocs)
	}
	// During the hurricane event, the pair must co-occur far more often
	// than before it.
	hur := events[0]
	coocDuring, coocBefore := 0, 0
	for _, d := range docs {
		has := func(tag string) bool {
			for _, t := range d.Tags {
				if t == tag {
					return true
				}
			}
			return false
		}
		if has(hur.Tags[0]) && has(hur.Tags[1]) {
			if hur.Active(d.Time) {
				coocDuring++
			} else if d.Time.Before(hur.Start) {
				coocBefore++
			}
		}
	}
	if coocDuring < 100 {
		t.Errorf("hurricane co-occurrence during event = %d, want >= 100", coocDuring)
	}
	if coocBefore != 0 {
		t.Errorf("hurricane co-occurrence before event = %d, want 0", coocBefore)
	}
}

func TestArchiveZipfSkew(t *testing.T) {
	docs := GenerateArchive(ArchiveConfig{Seed: 3, Days: 10, DocsPerDay: 300})
	counts := map[string]int{}
	for _, d := range docs {
		for _, tag := range d.Tags {
			counts[tag]++
		}
	}
	// The rank-0 descriptor of each category must dominate its rank-50.
	top := counts[Descriptor("politics", 0)]
	mid := counts[Descriptor("politics", 50)]
	if top == 0 || top < 5*mid {
		t.Errorf("descriptor skew weak: top=%d mid=%d", top, mid)
	}
}

func TestGenerateTweets(t *testing.T) {
	span := 8 * time.Hour
	cfg := TweetConfig{
		Seed: 5, Start: t0, Span: span, TweetsPerMinute: 10,
		Happenings: SIGMODAthensScenario(span),
	}
	docs := GenerateTweets(cfg)
	if len(docs) < int(10*span.Minutes()) {
		t.Fatalf("tweets = %d, want >= background volume", len(docs))
	}
	if !sort.SliceIsSorted(docs, func(i, j int) bool {
		return docs[i].Time.Before(docs[j].Time)
	}) {
		t.Error("tweets not sorted")
	}
	// The SIGMOD/Athens pair appears only during its scripted window.
	events := cfg.Events()
	var sigmod *Event
	for i := range events {
		if events[i].Name == "sigmod-athens" {
			sigmod = &events[i]
		}
	}
	if sigmod == nil {
		t.Fatal("scenario missing sigmod-athens")
	}
	n := 0
	for _, d := range docs {
		both := 0
		for _, tag := range d.Tags {
			if tag == "sigmod" || tag == "athens" {
				both++
			}
		}
		if both == 2 {
			n++
			if !sigmod.Active(d.Time) {
				t.Fatalf("sigmod doc outside window: %v", d.Time)
			}
		}
	}
	want := int(sigmod.DocsPerHour * sigmod.Duration.Hours())
	if n != want {
		t.Errorf("sigmod docs = %d, want %d", n, want)
	}
}

func TestGenerateFeed(t *testing.T) {
	cfg := FeedConfig{Seed: 2, Start: t0, Span: 12 * time.Hour,
		Happenings: SIGMODAthensScenario(12 * time.Hour)}
	docs := GenerateFeed(cfg)
	if len(docs) == 0 {
		t.Fatal("no feed docs")
	}
	srcs := map[string]bool{}
	for _, d := range docs {
		if !strings.HasPrefix(d.Source, "rss:") {
			t.Fatalf("source = %q", d.Source)
		}
		srcs[d.Source] = true
		if len(d.Tags) == 0 {
			t.Fatal("feed doc without tags")
		}
	}
	if len(srcs) < 3 {
		t.Errorf("feeds seen = %v, want 3+", srcs)
	}
}

func TestMerge(t *testing.T) {
	a := []Document{{Time: t0, ID: "a"}, {Time: t0.Add(2 * time.Hour), ID: "c"}}
	b := []Document{{Time: t0.Add(time.Hour), ID: "b"}}
	m := Merge(a, b)
	ids := []string{m[0].ID, m[1].ID, m[2].ID}
	if !reflect.DeepEqual(ids, []string{"a", "b", "c"}) {
		t.Errorf("merged = %v", ids)
	}
	if Merge() != nil && len(Merge()) != 0 {
		t.Error("empty merge")
	}
}

func BenchmarkGenerateArchive(b *testing.B) {
	cfg := ArchiveConfig{Seed: 1, Days: 30, DocsPerDay: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateArchive(cfg)
	}
}
