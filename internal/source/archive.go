package source

import (
	"fmt"
	"math/rand"
	"time"
)

// DefaultCategories mirrors the NYT editorial sections used as tags in show
// case 1 ("US election issues, hurricanes, or sport events").
var DefaultCategories = []string{
	"politics", "world", "business", "sports", "science",
	"arts", "health", "technology", "weather", "education",
}

// ArchiveConfig parameterises the synthetic news archive generator — the
// substitute for the New York Times 1987–2007 archive. Documents carry a
// category tag plus Zipf-distributed descriptor tags, like the NYT's
// back-office categories and descriptors.
type ArchiveConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Start and Days bound the archive period.
	Start time.Time
	Days  int
	// DocsPerDay is the mean background document rate. Zero means 200.
	DocsPerDay int
	// Categories defaults to DefaultCategories.
	Categories []string
	// DescriptorsPerCategory sizes each category's descriptor vocabulary.
	// Zero means 100.
	DescriptorsPerCategory int
	// DescriptorsPerDoc is the mean number of descriptor tags per document.
	// Zero means 3.
	DescriptorsPerDoc int
	// ZipfS is the Zipf skew of descriptor usage (>1). Zero means 1.3.
	ZipfS float64
	// Events are the injected ground-truth emergent topics.
	Events []Event
}

func (c ArchiveConfig) withDefaults() ArchiveConfig {
	if c.Start.IsZero() {
		c.Start = time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.DocsPerDay <= 0 {
		c.DocsPerDay = 200
	}
	if len(c.Categories) == 0 {
		c.Categories = DefaultCategories
	}
	if c.DescriptorsPerCategory <= 0 {
		c.DescriptorsPerCategory = 100
	}
	if c.DescriptorsPerDoc <= 0 {
		c.DescriptorsPerDoc = 3
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	return c
}

// Descriptor returns the deterministic descriptor tag name for a category
// and rank. Rank 0 is the most popular descriptor of the category.
func Descriptor(category string, rank int) string {
	return fmt.Sprintf("%s-d%03d", category, rank)
}

// GenerateArchive produces a time-sorted synthetic archive. Background
// documents draw a category (uniform) and descriptors (Zipf within the
// category, so each category has stable popular descriptors that co-occur
// at a steady background rate). Event documents are added on top while
// their event is active, tagged with the event pair and category.
func GenerateArchive(cfg ArchiveConfig) []Document {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.DescriptorsPerCategory-1))

	total := c.DocsPerDay * c.Days
	docs := make([]Document, 0, total+len(c.Events)*64)
	span := time.Duration(c.Days) * 24 * time.Hour

	for i := 0; i < total; i++ {
		at := c.Start.Add(time.Duration(rng.Int63n(int64(span))))
		cat := c.Categories[rng.Intn(len(c.Categories))]
		nd := 1 + rng.Intn(2*c.DescriptorsPerDoc-1) // mean ≈ DescriptorsPerDoc
		tags := make([]string, 0, nd+1)
		tags = append(tags, cat)
		for j := 0; j < nd; j++ {
			tags = append(tags, Descriptor(cat, int(zipf.Uint64())))
		}
		docs = append(docs, Document{
			Time:   at,
			ID:     fmt.Sprintf("arch-%06d", i),
			Tags:   tags,
			Source: "archive",
		})
	}

	for ei := range c.Events {
		docs = append(docs, eventDocs(rng, &c.Events[ei], fmt.Sprintf("evt%d", ei))...)
	}

	SortDocs(docs)
	return docs
}

// eventDocs materialises one event's extra documents at Poisson-ish arrival
// times over the active span.
func eventDocs(rng *rand.Rand, e *Event, idPrefix string) []Document {
	hours := e.Duration.Hours()
	n := int(e.DocsPerHour * hours)
	if n <= 0 && e.DocsPerHour > 0 {
		n = 1
	}
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		at := e.Start.Add(time.Duration(rng.Int63n(int64(e.Duration))))
		tags := []string{e.Tags[0], e.Tags[1]}
		if e.Category != "" {
			tags = append(tags, e.Category)
		}
		docs = append(docs, Document{
			Time:   at,
			ID:     fmt.Sprintf("%s-%05d", idPrefix, i),
			Tags:   tags,
			Text:   e.Text,
			Source: "archive",
		})
	}
	return docs
}

// HistoricEvents returns the scripted show-case-1 event set over the given
// archive start: a hurricane, an election controversy, and a sports upset —
// the categories the paper demos ("US election issues, hurricanes, or sport
// events"). Each event pairs a category descriptor with a fresh or
// cross-category tag, producing the correlation shifts enBlogue must find.
func HistoricEvents(start time.Time) []Event {
	return []Event{
		{
			Name:        "hurricane-landfall",
			Tags:        [2]string{"hurricane", "new-orleans"},
			Category:    "weather",
			Start:       start.Add(5 * 24 * time.Hour),
			Duration:    3 * 24 * time.Hour,
			DocsPerHour: 6,
			Text:        "Hurricane Katrina makes landfall near New Orleans",
		},
		{
			Name:        "election-recount",
			Tags:        [2]string{"election", "recount"},
			Category:    "politics",
			Start:       start.Add(12 * 24 * time.Hour),
			Duration:    4 * 24 * time.Hour,
			DocsPerHour: 5,
			Text:        "Election results contested as recount begins",
		},
		{
			Name:        "cup-upset",
			Tags:        [2]string{"world-cup", "underdog"},
			Category:    "sports",
			Start:       start.Add(20 * 24 * time.Hour),
			Duration:    2 * 24 * time.Hour,
			DocsPerHour: 8,
			Text:        "Underdog eliminates favourite in World Cup shock",
		},
	}
}
