package source

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Happening scripts one development in a simulated live stream: for its
// span, documents mentioning its tag pair arrive at the given rate. It is
// the live-stream twin of Event with tweet-flavoured text.
type Happening struct {
	Name string
	// Tags is the co-occurring tag pair (e.g. hashtags "sigmod"+"athens").
	Tags [2]string
	// Offset is the start relative to the stream start; Duration its span.
	Offset   time.Duration
	Duration time.Duration
	// DocsPerMinute is the arrival rate while active.
	DocsPerMinute float64
	// Text is an optional message template; both tags are appended as
	// hashtags regardless.
	Text string
}

// Event converts the happening to a ground-truth Event anchored at start.
func (h *Happening) Event(start time.Time) Event {
	return Event{
		Name:        h.Name,
		Tags:        h.Tags,
		Start:       start.Add(h.Offset),
		Duration:    h.Duration,
		DocsPerHour: h.DocsPerMinute * 60,
	}
}

// TweetConfig parameterises the simulated Twitter wrapper of show case 2.
type TweetConfig struct {
	Seed int64
	// Start and Span bound the stream.
	Start time.Time
	Span  time.Duration
	// TweetsPerMinute is the background rate. Zero means 60.
	TweetsPerMinute float64
	// Hashtags sizes the background hashtag vocabulary. Zero means 500.
	Hashtags int
	// TagsPerTweet is the mean hashtag count per tweet. Zero means 2.
	TagsPerTweet int
	// ZipfS skews hashtag popularity. Zero means 1.4.
	ZipfS float64
	// Happenings are the scripted developments (ground truth).
	Happenings []Happening
}

func (c TweetConfig) withDefaults() TweetConfig {
	if c.Start.IsZero() {
		c.Start = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	}
	if c.Span <= 0 {
		c.Span = 48 * time.Hour
	}
	if c.TweetsPerMinute <= 0 {
		c.TweetsPerMinute = 60
	}
	if c.Hashtags <= 0 {
		c.Hashtags = 500
	}
	if c.TagsPerTweet <= 0 {
		c.TagsPerTweet = 2
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.4
	}
	return c
}

// tweetPhrases feed the background tweet texts; several mention sample
// gazetteer entities so the entity tagger has realistic work.
var tweetPhrases = []string{
	"can't believe what just happened",
	"watching the news right now",
	"Barack Obama giving a speech today",
	"flights grounded over Iceland again",
	"great match by Roger Federer",
	"traffic in New York City is terrible",
	"reading about the BP oil spill",
	"weather in Athens is lovely",
	"so excited for the World Cup",
	"another day another deadline",
	"lunch break thoughts",
	"this conference wifi is struggling",
}

// GenerateTweets produces a time-sorted simulated tweet stream with
// background chatter plus the scripted happenings. Ground truth is
// recoverable via Events.
func GenerateTweets(cfg TweetConfig) []Document {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Hashtags-1))

	total := int(c.TweetsPerMinute * c.Span.Minutes())
	docs := make([]Document, 0, total+len(c.Happenings)*64)

	for i := 0; i < total; i++ {
		at := c.Start.Add(time.Duration(rng.Int63n(int64(c.Span))))
		nt := 1 + rng.Intn(2*c.TagsPerTweet-1)
		tags := make([]string, 0, nt)
		for j := 0; j < nt; j++ {
			tags = append(tags, fmt.Sprintf("ht%03d", zipf.Uint64()))
		}
		docs = append(docs, Document{
			Time:   at,
			ID:     fmt.Sprintf("tw-%07d", i),
			Tags:   tags,
			Text:   tweetPhrases[rng.Intn(len(tweetPhrases))],
			Source: "twitter",
		})
	}

	for hi := range c.Happenings {
		h := &c.Happenings[hi]
		n := int(h.DocsPerMinute * h.Duration.Minutes())
		for i := 0; i < n; i++ {
			at := c.Start.Add(h.Offset + time.Duration(rng.Int63n(int64(h.Duration))))
			txt := h.Text
			if txt == "" {
				txt = "everyone is talking about this"
			}
			docs = append(docs, Document{
				Time:   at,
				ID:     fmt.Sprintf("tw-%s-%05d", h.Name, i),
				Tags:   []string{h.Tags[0], h.Tags[1]},
				Text:   fmt.Sprintf("%s #%s #%s", txt, h.Tags[0], h.Tags[1]),
				Source: "twitter",
			})
		}
	}

	SortDocs(docs)
	return docs
}

// Events converts the config's happenings into ground-truth events.
func (c TweetConfig) Events() []Event {
	cc := c.withDefaults()
	out := make([]Event, len(cc.Happenings))
	for i := range cc.Happenings {
		out[i] = cc.Happenings[i].Event(cc.Start)
	}
	return out
}

// SIGMODAthensScenario returns the paper's live-demo stunt: "With the
// proper system configuration and the help of the present twitter users we
// may be able to see a topic regarding SIGMOD and Athens in a highly ranked
// position." The pair starts silent and surges mid-stream.
func SIGMODAthensScenario(span time.Duration) []Happening {
	return []Happening{
		{
			Name:          "sigmod-athens",
			Tags:          [2]string{"sigmod", "athens"},
			Offset:        span / 2,
			Duration:      span / 8,
			DocsPerMinute: 4,
			Text:          "greetings from the SIGMOD conference in Athens",
		},
		{
			Name:          "volcano-airtraffic",
			Tags:          [2]string{"volcano", "air-traffic"},
			Offset:        span / 4,
			Duration:      span / 6,
			DocsPerMinute: 3,
			Text:          "Eyjafjallajokull ash cloud disrupting air traffic over Iceland",
		},
	}
}

// FeedConfig parameterises the RSS/blog wrapper: lower-rate, titled items
// over the same scenario machinery.
type FeedConfig struct {
	Seed int64
	// FeedNames identify the simulated feeds; defaults to three outlets.
	FeedNames []string
	Start     time.Time
	Span      time.Duration
	// ItemsPerHourPerFeed is the background rate. Zero means 6.
	ItemsPerHourPerFeed float64
	// Topics sizes the background topic-tag vocabulary. Zero means 120.
	Topics int
	// ZipfS skews topic popularity. Zero means 1.3.
	ZipfS float64
	// Happenings are scripted developments shared with the tweet stream.
	Happenings []Happening
}

func (c FeedConfig) withDefaults() FeedConfig {
	if len(c.FeedNames) == 0 {
		c.FeedNames = []string{"daily-herald", "tech-ledger", "sports-wire"}
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	}
	if c.Span <= 0 {
		c.Span = 48 * time.Hour
	}
	if c.ItemsPerHourPerFeed <= 0 {
		c.ItemsPerHourPerFeed = 6
	}
	if c.Topics <= 0 {
		c.Topics = 120
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	return c
}

// GenerateFeed produces a time-sorted simulated RSS stream.
func GenerateFeed(cfg FeedConfig) []Document {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Topics-1))

	perFeed := int(c.ItemsPerHourPerFeed * c.Span.Hours())
	docs := make([]Document, 0, perFeed*len(c.FeedNames))
	for fi, feed := range c.FeedNames {
		for i := 0; i < perFeed; i++ {
			at := c.Start.Add(time.Duration(rng.Int63n(int64(c.Span))))
			topic := fmt.Sprintf("topic%03d", zipf.Uint64())
			second := fmt.Sprintf("topic%03d", zipf.Uint64())
			tags := []string{topic}
			if second != topic {
				tags = append(tags, second)
			}
			docs = append(docs, Document{
				Time:   at,
				ID:     fmt.Sprintf("rss-%d-%06d", fi, i),
				Tags:   tags,
				Text:   fmt.Sprintf("%s reports on %s", feed, strings.Join(tags, " and ")),
				Source: "rss:" + feed,
			})
		}
	}
	for hi := range c.Happenings {
		h := &c.Happenings[hi]
		n := int(h.DocsPerMinute * h.Duration.Minutes() / 10) // feeds are ~10x slower than tweets
		for i := 0; i < n; i++ {
			at := c.Start.Add(h.Offset + time.Duration(rng.Int63n(int64(h.Duration))))
			docs = append(docs, Document{
				Time:   at,
				ID:     fmt.Sprintf("rss-%s-%05d", h.Name, i),
				Tags:   []string{h.Tags[0], h.Tags[1]},
				Text:   h.Text,
				Source: "rss:" + c.FeedNames[i%len(c.FeedNames)],
			})
		}
	}
	SortDocs(docs)
	return docs
}

// Merge combines several sorted document streams into one sorted stream —
// the multi-wrapper setup of the live demo (Twitter plus several feeds).
func Merge(streams ...[]Document) []Document {
	var total int
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Document, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	SortDocs(out)
	return out
}
