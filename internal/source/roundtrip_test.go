package source

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// Property: any generated document slice survives a JSONL round trip
// exactly (times compared at UTC nanosecond resolution).
func TestJSONLRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		docs := make([]Document, int(n)%32)
		for i := range docs {
			docs[i] = Document{
				Time:   t0.Add(time.Duration(rng.Int63n(1e15))).UTC(),
				ID:     fmt.Sprintf("doc-%d-%d", seed, i),
				Tags:   []string{fmt.Sprintf("t%d", rng.Intn(9))},
				Text:   strings.Repeat("x", rng.Intn(40)),
				Source: "prop",
			}
			if rng.Intn(2) == 0 {
				docs[i].Entities = []string{"barack obama"}
			}
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, docs); err != nil {
			return false
		}
		got, skipped, err := ReadJSONL(&buf, true)
		if err != nil || skipped != 0 {
			return false
		}
		if len(docs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(docs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the lenient reader never errors on arbitrary garbage lines and
// returns only well-formed documents.
func TestReadJSONLGarbageTolerance(t *testing.T) {
	f := func(lines []string) bool {
		in := strings.Join(lines, "\n")
		docs, _, err := ReadJSONL(strings.NewReader(in), false)
		if err != nil {
			// Only scanner-level failures (overlong tokens) may error; our
			// generated lines are short strings, so no error is expected.
			return false
		}
		for _, d := range docs {
			_ = d // every returned doc decoded cleanly by construction
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Merge produces a time-sorted permutation of its inputs.
func TestMergeProperty(t *testing.T) {
	f := func(seed int64, a8, b8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int, prefix string) []Document {
			docs := make([]Document, n%16)
			for i := range docs {
				docs[i] = Document{
					Time: t0.Add(time.Duration(rng.Intn(1000)) * time.Minute),
					ID:   fmt.Sprintf("%s%d", prefix, i),
				}
			}
			SortDocs(docs)
			return docs
		}
		a, b := mk(int(a8), "a"), mk(int(b8), "b")
		m := Merge(a, b)
		if len(m) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i].Time.Before(m[i-1].Time) {
				return false
			}
		}
		seen := map[string]bool{}
		for _, d := range m {
			if seen[d.ID] {
				return false
			}
			seen[d.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Generators must produce documents whose pair events match TruthPairs:
// every event pair co-occurs somewhere in the output.
func TestArchiveCoversAllEventPairs(t *testing.T) {
	start := t0
	events := HistoricEvents(start)
	docs := GenerateArchive(ArchiveConfig{
		Seed: 5, Start: start, Days: 25, DocsPerDay: 50, Events: events,
	})
	truth := TruthPairs(events)
	covered := map[string]bool{}
	for _, d := range docs {
		has := map[string]bool{}
		for _, tag := range d.Tags {
			has[tag] = true
		}
		for k := range truth {
			// k is a pairs.Key; check both tags present.
			if has[k.Tag1()] && has[k.Tag2()] {
				covered[k.String()] = true
			}
		}
	}
	if len(covered) != len(truth) {
		t.Errorf("covered %d/%d event pairs", len(covered), len(truth))
	}
}
