// Package source provides the data-source wrappers of the paper's
// architecture: "At the data source level, it consists of several wrappers
// that either consume live streams or replay existing datasets for
// experiments."
//
// The paper's proprietary datasets are substituted by synthetic generators
// with the same statistical shape and — crucially — known ground truth:
//
//   - the New York Times archive (1.8M docs, 1987–2007, editorial categories
//     and descriptors) → GenerateArchive: Zipf-distributed category/descriptor
//     tags plus injected emergent events at known times (show case 1);
//   - live Twitter → GenerateTweets: hashtagged short texts with scripted
//     happenings, including the SIGMOD/Athens stunt (show case 2);
//   - RSS/blog feeds → GenerateFeed: titled items on the same scenario
//     machinery.
//
// Documents serialise to JSONL for archiving and replay at configurable
// time-lapse speed.
package source

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/stream"
)

// Document is the serialisable form of a stream item.
type Document struct {
	Time     time.Time `json:"time"`
	ID       string    `json:"id"`
	Tags     []string  `json:"tags"`
	Entities []string  `json:"entities,omitempty"`
	Text     string    `json:"text,omitempty"`
	Source   string    `json:"source,omitempty"`
}

// Item converts the document to a stream tuple.
func (d *Document) Item() *stream.Item {
	return &stream.Item{
		Time:     d.Time,
		DocID:    d.ID,
		Tags:     append([]string(nil), d.Tags...),
		Entities: append([]string(nil), d.Entities...),
		Text:     d.Text,
		Source:   d.Source,
	}
}

// FromItem converts a stream tuple back to a document.
func FromItem(it *stream.Item) Document {
	return Document{
		Time:     it.Time,
		ID:       it.DocID,
		Tags:     append([]string(nil), it.Tags...),
		Entities: append([]string(nil), it.Entities...),
		Text:     it.Text,
		Source:   it.Source,
	}
}

// SortDocs orders documents by (time, ID) in place — generator output must
// be replayed in timestamp order.
func SortDocs(docs []Document) {
	sort.Slice(docs, func(i, j int) bool {
		if !docs[i].Time.Equal(docs[j].Time) {
			return docs[i].Time.Before(docs[j].Time)
		}
		return docs[i].ID < docs[j].ID
	})
}

// WriteJSONL writes one JSON document per line.
func WriteJSONL(w io.Writer, docs []Document) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			return fmt.Errorf("source: encoding doc %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads JSONL documents. With strict true, the first malformed
// line aborts with an error naming the line; otherwise malformed lines are
// skipped and counted.
func ReadJSONL(r io.Reader, strict bool) (docs []Document, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var d Document
		if err := json.Unmarshal(raw, &d); err != nil {
			if strict {
				return nil, 0, fmt.Errorf("source: line %d: %w", line, err)
			}
			skipped++
			continue
		}
		docs = append(docs, d)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("source: reading: %w", err)
	}
	return docs, skipped, nil
}

// Replayer replays a document slice as a stream source, optionally in
// time-lapse: with Speedup > 0, inter-arrival gaps are divided by Speedup
// and slept in wall time (capped at MaxSleep); with Speedup <= 0 the replay
// runs as fast as the consumer accepts — the mode used by experiments.
type Replayer struct {
	Docs    []Document
	Speedup float64
	// MaxSleep caps a single inter-document sleep so archive gaps (nights,
	// weekends) don't stall a demo. Zero means 2 seconds.
	MaxSleep time.Duration
}

// Run implements stream.Source.
func (r *Replayer) Run(ctx context.Context, emit func(*stream.Item)) error {
	maxSleep := r.MaxSleep
	if maxSleep <= 0 {
		maxSleep = 2 * time.Second
	}
	var prev time.Time
	for i := range r.Docs {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		d := &r.Docs[i]
		if r.Speedup > 0 && !prev.IsZero() {
			gap := d.Time.Sub(prev)
			if gap > 0 {
				sleep := time.Duration(float64(gap) / r.Speedup)
				if sleep > maxSleep {
					sleep = maxSleep
				}
				timer := time.NewTimer(sleep)
				select {
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				case <-timer.C:
				}
			}
		}
		prev = d.Time
		emit(d.Item())
	}
	return nil
}

// Event is an injected ground-truth emergent topic: during its active span,
// extra documents are generated carrying both tags, raising the pair's
// correlation. Events are what the archive lacks in real datasets — known
// answers for precision and latency measurement.
type Event struct {
	// Name labels the event (e.g. "hurricane-landfall").
	Name string
	// Tags is the tag pair whose correlation shifts.
	Tags [2]string
	// Category is an optional extra tag stamped on event documents,
	// simulating the NYT editorial category.
	Category string
	// Start and Duration bound the active span.
	Start    time.Time
	Duration time.Duration
	// DocsPerHour is the rate of extra co-tagged documents while active.
	DocsPerHour float64
	// Text is an optional text template for event documents.
	Text string
}

// Pair returns the canonical pair key of the event's tag pair.
func (e *Event) Pair() pairs.Key { return pairs.MakeKey(e.Tags[0], e.Tags[1]) }

// Active reports whether t falls inside the event span.
func (e *Event) Active(t time.Time) bool {
	return !t.Before(e.Start) && t.Before(e.Start.Add(e.Duration))
}

// TruthPairs returns the set of ground-truth emergent pairs of the events.
func TruthPairs(events []Event) map[pairs.Key]bool {
	out := make(map[pairs.Key]bool, len(events))
	for i := range events {
		out[events[i].Pair()] = true
	}
	return out
}
