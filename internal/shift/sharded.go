package shift

import (
	"time"

	"enblogue/internal/pairs"
)

// Sharded partitions detector state across n independent Detectors, one per
// pair-space shard: shard i owns exactly the pairs with Key.Shard(n) == i.
// Each inner Detector is touched only by its shard's evaluation worker, so
// no locking is needed as long as callers respect the partition — evaluate
// pair k only on Shard(k.Shard(n)), from one goroutine per shard at a time.
//
// Per-pair scoring is independent across pairs, so splitting a global
// Detector into shards changes nothing about the scores — provided every
// shard agrees on the evaluation-round count. BeginTick keeps them in
// lockstep: the engine calls it once per tick (when at least one pair will
// be evaluated anywhere), advancing all shard detectors together exactly as
// a single detector would advance once.
type Sharded struct {
	dets []*Detector
}

// NewSharded returns a sharded detector with n shards (minimum 1), each
// configured with cfg.
func NewSharded(n int, cfg Config) *Sharded {
	if n < 1 {
		n = 1
	}
	dets := make([]*Detector, n)
	for i := range dets {
		dets[i] = NewDetector(cfg)
	}
	return &Sharded{dets: dets}
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.dets) }

// Shard returns shard i's detector. The caller must only evaluate pairs
// whose Key.Shard(Shards()) == i on it.
func (s *Sharded) Shard(i int) *Detector { return s.dets[i] }

// For returns the detector owning pair k.
func (s *Sharded) For(k pairs.Key) *Detector {
	return s.dets[k.Shard(len(s.dets))]
}

// BeginTick advances every shard detector's evaluation-round clock to t.
// Call once at the start of each tick that will evaluate at least one pair.
func (s *Sharded) BeginTick(t time.Time) {
	for _, d := range s.dets {
		d.BeginTick(t)
	}
}

// ActiveStates returns the total number of pairs with detector state.
func (s *Sharded) ActiveStates() int {
	n := 0
	for _, d := range s.dets {
		n += d.ActiveStates()
	}
	return n
}
