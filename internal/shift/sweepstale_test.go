package shift

import (
	"fmt"
	"testing"
	"time"

	"enblogue/internal/pairs"
)

// SweepStale must behave exactly like Sweep with a keep set containing the
// pairs evaluated at the sweep tick: evaluated pairs survive regardless of
// score, stale pairs survive only while their decayed score holds up.
func TestSweepStaleMatchesKeepSet(t *testing.T) {
	t0 := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	mk := func(i int) pairs.Key { return pairs.MakeKey(fmt.Sprintf("s%d", i), "x") }

	build := func() *Detector {
		d := NewDetector(Config{MinCooccurrence: 1, HalfLife: time.Hour})
		// Round one: everything warms up. Round two: real scores.
		for i := 0; i < 6; i++ {
			d.Evaluate(t0, mk(i), 5, 10, 10, 100)
		}
		for i := 0; i < 6; i++ {
			d.Evaluate(t0.Add(time.Hour), mk(i), 8, 10, 10, 100)
		}
		return d
	}

	// Far enough out that every decayed score is below the floor.
	later := t0.Add(100 * time.Hour)

	ref := build()
	keep := map[pairs.Key]bool{}
	for i := 0; i < 3; i++ {
		ref.Evaluate(later, mk(i), 8, 10, 10, 100)
		keep[mk(i)] = true
	}
	ref.Sweep(later, keep, 1e-9)

	got := build()
	for i := 0; i < 3; i++ {
		got.Evaluate(later, mk(i), 8, 10, 10, 100)
	}
	got.SweepStale(later, 1e-9)

	if got.ActiveStates() != ref.ActiveStates() {
		t.Fatalf("SweepStale kept %d states, keep-set Sweep kept %d",
			got.ActiveStates(), ref.ActiveStates())
	}
	for i := 0; i < 6; i++ {
		g := got.Score(later, mk(i))
		r := ref.Score(later, mk(i))
		if g != r {
			t.Errorf("pair %d: score %v vs reference %v", i, g, r)
		}
	}
	// The evaluated pairs must have survived; the stale below-floor ones
	// must be gone.
	if got.ActiveStates() != 3 {
		t.Errorf("ActiveStates = %d, want 3", got.ActiveStates())
	}
}
