package shift

import (
	"math"
	"testing"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/predict"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func newDet(t *testing.T) *Detector {
	t.Helper()
	return NewDetector(Config{
		Measure:         pairs.Jaccard,
		Predictor:       predict.KindMovingAverage,
		PredictorConfig: predict.Config{Window: 4},
		HalfLife:        48 * time.Hour,
		MinCooccurrence: 1,
	})
}

func TestDefaults(t *testing.T) {
	d := NewDetector(Config{})
	cfg := d.Config()
	if cfg.HalfLife != DefaultHalfLife {
		t.Errorf("HalfLife = %v, want %v", cfg.HalfLife, DefaultHalfLife)
	}
	if cfg.MinCooccurrence != 2 {
		t.Errorf("MinCooccurrence = %v, want 2", cfg.MinCooccurrence)
	}
}

func TestWarmupThenScore(t *testing.T) {
	d := newDet(t)
	k := pairs.MakeKey("a", "b")
	top := d.Evaluate(t0, k, 5, 10, 10, 100)
	if !top.Warmup {
		t.Error("first tick should be warmup")
	}
	top = d.Evaluate(t0.Add(time.Hour), k, 5, 10, 10, 100)
	if top.Warmup {
		t.Error("second tick should not be warmup")
	}
	// Identical correlation → zero error.
	if top.Error != 0 {
		t.Errorf("steady error = %v, want 0", top.Error)
	}
}

func TestShiftRaisesScore(t *testing.T) {
	d := newDet(t)
	k := pairs.MakeKey("iceland", "air-traffic")
	// Stable low correlation for 10 ticks.
	ts := t0
	for i := 0; i < 10; i++ {
		d.Evaluate(ts, k, 1, 50, 20, 500)
		ts = ts.Add(time.Hour)
	}
	before := d.Score(ts, k)
	// Sudden jump in co-occurrence.
	top := d.Evaluate(ts, k, 18, 50, 20, 500)
	if top.Error <= 0 {
		t.Fatalf("shift error = %v, want > 0", top.Error)
	}
	if top.Score <= before {
		t.Errorf("score %v did not rise above pre-shift %v", top.Score, before)
	}
	wantCorr := pairs.Jaccard.Compute(18, 50, 20, 500)
	if math.Abs(top.Correlation-wantCorr) > 1e-12 {
		t.Errorf("Correlation = %v, want %v", top.Correlation, wantCorr)
	}
}

func TestPredictableGrowthScoresLow(t *testing.T) {
	// With a trend-aware predictor (Holt), a steadily growing correlation
	// should accumulate much less score than an equally sized sudden jump.
	cfgBase := Config{
		Measure:         pairs.Jaccard,
		Predictor:       predict.KindHolt,
		PredictorConfig: predict.Config{Alpha: 0.6, Beta: 0.3},
		MinCooccurrence: 1,
	}
	gradual := NewDetector(cfgBase)
	sudden := NewDetector(cfgBase)
	kg := pairs.MakeKey("g", "h")
	ks := pairs.MakeKey("s", "t")
	ts := t0
	var lastGradual, lastSudden Topic
	for i := 0; i < 20; i++ {
		// Gradual: co-occurrence grows by 1 per tick.
		lastGradual = gradual.Evaluate(ts, kg, float64(i+1), 40, 40, 400)
		// Sudden: flat at 1 until the final tick jumps to 20.
		nab := 1.0
		if i == 19 {
			nab = 20
		}
		lastSudden = sudden.Evaluate(ts, ks, nab, 40, 40, 400)
		ts = ts.Add(time.Hour)
	}
	if lastSudden.Score <= 2*lastGradual.Score {
		t.Errorf("sudden score %v should dominate gradual score %v",
			lastSudden.Score, lastGradual.Score)
	}
}

func TestScoreDecaysWithHalfLife(t *testing.T) {
	d := NewDetector(Config{
		Measure:         pairs.Jaccard,
		Predictor:       predict.KindNaive,
		HalfLife:        time.Hour,
		MinCooccurrence: 1,
	})
	k := pairs.MakeKey("a", "b")
	d.Evaluate(t0, k, 0, 10, 10, 100)
	top := d.Evaluate(t0.Add(time.Minute), k, 10, 10, 10, 100) // jump
	if top.Error <= 0 {
		t.Fatal("expected nonzero error after jump")
	}
	s0 := top.Score
	s1 := d.Score(t0.Add(time.Minute+time.Hour), k)
	if math.Abs(s1-s0/2) > 1e-9 {
		t.Errorf("after one half-life score = %v, want %v", s1, s0/2)
	}
}

func TestScoreIsMaxOfCurrentAndDecayedPast(t *testing.T) {
	d := NewDetector(Config{
		Measure:         pairs.Overlap,
		Predictor:       predict.KindNaive,
		HalfLife:        time.Hour,
		MinCooccurrence: 1,
	})
	k := pairs.MakeKey("a", "b")
	d.Evaluate(t0, k, 1, 10, 10, 100) // warmup, corr=0.1
	// Big jump: corr 0.1 → 0.9, error 0.8.
	big := d.Evaluate(t0.Add(time.Minute), k, 9, 10, 10, 100)
	if math.Abs(big.Error-0.8) > 1e-9 {
		t.Fatalf("big error = %v, want 0.8", big.Error)
	}
	// Shortly after, a small wiggle: decayed past error should dominate.
	small := d.Evaluate(t0.Add(2*time.Minute), k, 8, 10, 10, 100)
	if small.Score <= small.Error {
		t.Errorf("score %v should exceed current error %v (dampened past)",
			small.Score, small.Error)
	}
	if small.Score >= big.Score {
		t.Errorf("score %v should have decayed below %v", small.Score, big.Score)
	}
}

func TestMinCooccurrenceSuppressesNoise(t *testing.T) {
	d := NewDetector(Config{
		Measure:         pairs.Jaccard,
		Predictor:       predict.KindNaive,
		MinCooccurrence: 5,
	})
	k := pairs.MakeKey("noise", "blip")
	d.Evaluate(t0, k, 0, 3, 3, 100)
	// A pair of singleton tags suddenly co-occurring: corr jumps to 1 but
	// support (nab=2) is below the significance floor.
	top := d.Evaluate(t0.Add(time.Hour), k, 2, 2, 2, 100)
	if top.Error != 0 || top.Score != 0 {
		t.Errorf("insignificant pair scored: err=%v score=%v", top.Error, top.Score)
	}
}

func TestUpOnly(t *testing.T) {
	up := NewDetector(Config{
		Measure: pairs.Overlap, Predictor: predict.KindNaive,
		MinCooccurrence: 1, UpOnly: true,
	})
	both := NewDetector(Config{
		Measure: pairs.Overlap, Predictor: predict.KindNaive,
		MinCooccurrence: 1, UpOnly: false,
	})
	k := pairs.MakeKey("a", "b")
	// corr 0.9 then collapse to 0.1.
	for _, d := range []*Detector{up, both} {
		d.Evaluate(t0, k, 9, 10, 10, 100)
	}
	tu := up.Evaluate(t0.Add(time.Hour), k, 1, 10, 10, 100)
	tb := both.Evaluate(t0.Add(time.Hour), k, 1, 10, 10, 100)
	if tu.Error != 0 {
		t.Errorf("UpOnly error on collapse = %v, want 0", tu.Error)
	}
	if math.Abs(tb.Error-0.8) > 1e-9 {
		t.Errorf("two-sided error on collapse = %v, want 0.8", tb.Error)
	}
}

func TestNewPairMidStreamScoresAgainstZeroHistory(t *testing.T) {
	d := NewDetector(Config{
		Measure:         pairs.Overlap,
		Predictor:       predict.KindMovingAverage,
		PredictorConfig: predict.Config{Window: 4},
		MinCooccurrence: 1,
	})
	// Round 1: some other pair warms the detector.
	d.Evaluate(t0, pairs.MakeKey("a", "b"), 2, 10, 10, 100)
	// Round 5: a brand-new pair appears at full correlation (its tags only
	// ever co-occur — the Eyjafjallajökull case). Previous correlation is
	// implicitly zero, so the whole corr is the shift.
	top := d.Evaluate(t0.Add(5*time.Hour), pairs.MakeKey("volcano", "air-traffic"), 8, 8, 8, 200)
	if top.Warmup {
		t.Fatal("mid-stream pair treated as warmup")
	}
	if math.Abs(top.Error-1) > 1e-9 {
		t.Errorf("first-eval error = %v, want 1 (corr 1 vs implicit 0)", top.Error)
	}
	// But on the detector's FIRST round, everything is warmup.
	d2 := NewDetector(Config{
		Measure: pairs.Overlap, Predictor: predict.KindNaive, MinCooccurrence: 1,
	})
	if top := d2.Evaluate(t0, pairs.MakeKey("x", "y"), 5, 5, 5, 50); !top.Warmup {
		t.Error("first-round pair not treated as warmup")
	}
}

func TestScoreUnknownPair(t *testing.T) {
	d := newDet(t)
	if got := d.Score(t0, pairs.MakeKey("x", "y")); got != 0 {
		t.Errorf("Score of unknown pair = %v, want 0", got)
	}
}

func TestForgetAndSweep(t *testing.T) {
	d := NewDetector(Config{
		Measure: pairs.Jaccard, Predictor: predict.KindNaive,
		HalfLife: time.Hour, MinCooccurrence: 1,
	})
	k1 := pairs.MakeKey("a", "b")
	k2 := pairs.MakeKey("c", "d")
	k3 := pairs.MakeKey("e", "f")
	for _, k := range []pairs.Key{k1, k2, k3} {
		d.Evaluate(t0, k, 0, 10, 10, 100)
		d.Evaluate(t0.Add(time.Minute), k, 5, 10, 10, 100)
	}
	if d.ActiveStates() != 3 {
		t.Fatalf("ActiveStates = %d, want 3", d.ActiveStates())
	}
	d.Forget(k3)
	if d.ActiveStates() != 2 {
		t.Errorf("after Forget: %d states, want 2", d.ActiveStates())
	}
	// After many half-lives, scores are ~0; sweep with keep={k1}.
	later := t0.Add(100 * time.Hour)
	d.Sweep(later, map[pairs.Key]bool{k1: true}, 1e-6)
	if d.ActiveStates() != 1 {
		t.Errorf("after Sweep: %d states, want 1 (kept)", d.ActiveStates())
	}
	if d.Score(later, k2) != 0 {
		t.Error("swept pair still has score")
	}
}

// The Figure-1 scenario as a unit test: a popular tag's solo burst does not
// move the pair score, but a genuine correlation shift does.
func TestFigure1Semantics(t *testing.T) {
	d := NewDetector(Config{
		Measure:         pairs.Jaccard,
		Predictor:       predict.KindMovingAverage,
		PredictorConfig: predict.Config{Window: 4},
		MinCooccurrence: 1,
	})
	k := pairs.MakeKey("t1", "t2")
	ts := t0
	// Phase 1: stable overlap 2 of t1=50, t2=10.
	for i := 0; i < 8; i++ {
		d.Evaluate(ts, k, 2, 50, 10, 500)
		ts = ts.Add(time.Hour)
	}
	// Phase 2: t1 bursts alone (na 50→150), overlap unchanged.
	var burstTop Topic
	for i := 0; i < 4; i++ {
		burstTop = d.Evaluate(ts, k, 2, 150, 10, 600)
		ts = ts.Add(time.Hour)
	}
	// Phase 3: true shift — overlap explodes.
	shiftTop := d.Evaluate(ts, k, 9, 150, 10, 600)
	if shiftTop.Error <= 4*burstTop.Error {
		t.Errorf("true shift error %v should dominate solo-burst error %v",
			shiftTop.Error, burstTop.Error)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	d := NewDetector(Config{
		Measure:         pairs.Jaccard,
		Predictor:       predict.KindMovingAverage,
		PredictorConfig: predict.Config{Window: 8},
		MinCooccurrence: 1,
	})
	keys := make([]pairs.Key, 256)
	for i := range keys {
		keys[i] = pairs.MakeKey("seed", "tag"+string(rune('a'+i%26))+string(rune('a'+i/26)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		d.Evaluate(t0.Add(time.Duration(i)*time.Second), k, float64(i%7), 50, 30, 1000)
	}
}
