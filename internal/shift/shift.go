// Package shift implements stage (iii) of the paper — shift detection:
// "We consider sudden (but significant) increases in the correlation of tag
// pairs as an indicator for an emergent topic. ... at any point in time we
// use the previous correlation values and try to predict the current ones.
// If a predicted value is far away from the real one then the topic is
// considered to be emergent and the prediction error is used as a ranking
// criterion. At any point in time the score of a topic is the maximum of
// the current prediction error and the prediction errors from the past,
// dampened appropriately using an exponential decline factor with a half
// life of approximately 2 days."
package shift

import (
	"math"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/window"
)

// DefaultHalfLife is the paper's "approximately 2 days".
const DefaultHalfLife = 48 * time.Hour

// Config parameterises a Detector.
type Config struct {
	// Measure is the correlation measure evaluated per pair.
	Measure pairs.Measure
	// Predictor selects the one-step forecaster per pair.
	Predictor predict.Kind
	// PredictorConfig tunes the forecaster.
	PredictorConfig predict.Config
	// HalfLife dampens past prediction errors. Zero means DefaultHalfLife.
	HalfLife time.Duration
	// MinCooccurrence suppresses scoring of pairs with less windowed
	// support than this ("sudden but significant"). Zero means 2.
	MinCooccurrence float64
	// UpOnly scores only increases in correlation when true (the paper
	// looks for "sudden ... increases"); when false the absolute error is
	// used, also flagging collapses.
	UpOnly bool
}

func (c Config) withDefaults() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.MinCooccurrence <= 0 {
		c.MinCooccurrence = 2
	}
	return c
}

// Topic is the evaluation result for one tag pair at one tick.
type Topic struct {
	Pair pairs.Key
	// Score is the ranking criterion: the decayed maximum of prediction
	// errors up to and including this tick.
	Score float64
	// Correlation is the measured correlation at this tick.
	Correlation float64
	// Predicted is the forecast the correlation was compared against;
	// meaningless when Warmup is true.
	Predicted float64
	// Error is the current prediction error (the "shift" magnitude).
	Error float64
	// Cooccurrence is the windowed number of documents with both tags.
	Cooccurrence float64
	// At is the evaluation time.
	At time.Time
	// Warmup reports that the pair had too little history to score.
	Warmup bool
}

// state is the per-pair incremental detector state. States live in a dense
// slab (Detector.states) rather than behind one heap pointer each: the
// evaluation tick walks tens of thousands of them, and slab entries touched
// in snapshot order stay cache-resident where pointer-chased heap objects
// would not. key doubles as the liveness flag — a zero pairs.Key never
// names a real pair (interned IDs are biased by +1 before packing), so
// key == pairs.Key{} marks a free slab entry.
type state struct {
	key pairs.Key
	// naive is the inlined default predictor: when the detector is
	// configured with predict.KindNaive (the default), the forecaster
	// state lives here by value — no per-pair predictor allocation and no
	// interface-call indirection on the hot loop. Any other kind allocates
	// through predict.New into the detector's side slice Detector.preds,
	// keyed by slab index: keeping the interface out of this struct keeps
	// the slab pointer-free (the garbage collector never scans it) and
	// shaves two words off every entry the evaluation tick streams over.
	naive predict.Naive
	decay window.Decay
	// seenNano is the unix-nano stamp of the last evaluation tick that
	// touched this pair — an int64 rather than a time.Time so the per-pair
	// store on the evaluation hot loop is barrier-free.
	seenNano int64
	// keepUntilNano caches decay.KeepUntilNano(minScore) between sweeps: a
	// stale pair's decay state does not change while it is stale, so one
	// log2 buys every subsequent sweep a plain integer comparison instead
	// of an exponential. Zero means unknown; reset whenever decay updates.
	keepUntilNano int64
}

// Detector maintains per-pair predictors and decayed score maxima. It is
// not safe for concurrent use.
type Detector struct {
	cfg      Config
	useNaive bool
	// index maps a pair to its slab position; states is the slab itself
	// with free entries (zero key) chained through free. preds carries the
	// non-naive predictors parallel to states (see state.naive); it stays
	// nil under the default naive predictor.
	index  map[pairs.Key]int32
	states []state
	preds  []predict.Predictor
	free   []int32
	// cache memoizes the per-tick decay factor shared by every pair
	// evaluated with the same elapsed duration.
	cache window.DecayCache
	// bySlot caches, per caller-provided slot hint, the slab index the
	// hint last resolved to. The engine's evaluation loop feeds each pair's
	// tracker arena slot as the hint: a slot names the same pair for the
	// pair's whole tracked lifetime, so after a pair's first evaluation the
	// hint resolves its detector state with one array read plus a key
	// compare instead of a map probe — no positional bookkeeping, immune to
	// pair insertion and eviction churn. A stale entry (slot reused by a
	// different pair, or the state released) fails the key validation and
	// falls back to the map, which rewrites the entry; a hit can therefore
	// never resolve to the wrong pair. -1 marks a never-written entry.
	bySlot []int32
	// curTickNano and tickCount track evaluation rounds: pairs first seen
	// on round one get a silent warm-up (the detector has no history for
	// anything yet), while pairs appearing on later rounds are scored
	// against an implicit previous correlation of zero — they were not
	// tracked before precisely because their tags never co-occurred. The
	// round clock is a unix-nano wall stamp, not a time.Time: the advance
	// check runs once per pair evaluation, and an integer compare skips
	// time.After's monotonic-clock resolution.
	curTickNano int64
	tickCount   int
}

// NewDetector returns a detector with the given configuration.
func NewDetector(cfg Config) *Detector {
	c := cfg.withDefaults()
	return &Detector{
		cfg:      c,
		useNaive: c.Predictor == predict.KindNaive,
		index:    make(map[pairs.Key]int32),
		// Zero times carry a large negative UnixNano, so "unset" must sit
		// below any representable stamp for the first tick to advance.
		curTickNano: math.MinInt64,
	}
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// alloc returns a fresh zeroed slab position for pair k.
func (d *Detector) alloc(k pairs.Key) (*state, int32) {
	var i int32
	if n := len(d.free); n > 0 {
		i = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		i = int32(len(d.states))
		d.states = append(d.states, state{})
	}
	st := &d.states[i]
	*st = state{key: k, decay: window.MakeDecay(d.cfg.HalfLife)}
	if !d.useNaive {
		for int(i) >= len(d.preds) {
			d.preds = append(d.preds, nil)
		}
		d.preds[i] = predict.New(d.cfg.Predictor, d.cfg.PredictorConfig)
	}
	d.index[k] = i
	return st, i
}

// release frees the slab entry at position i after removing its pair from
// the index.
func (d *Detector) release(i int32) {
	st := &d.states[i]
	delete(d.index, st.key)
	*st = state{}
	if !d.useNaive {
		d.preds[i] = nil
	}
	d.free = append(d.free, i)
}

// predict consults the pair's forecaster.
func (d *Detector) predict(st *state, i int32) (float64, bool) {
	if d.useNaive {
		return st.naive.Predict()
	}
	return d.preds[i].Predict()
}

// observe feeds the pair's forecaster the measured correlation.
func (d *Detector) observe(st *state, i int32, corr float64) {
	if d.useNaive {
		st.naive.Observe(corr)
	} else {
		d.preds[i].Observe(corr)
	}
}

// BeginTick advances the detector's evaluation-round clock to t without
// evaluating anything. Sharded engines call it on every shard detector at
// the start of a tick so that a shard whose first pair arrives late still
// agrees with a single global detector on which round it is — the round
// number decides whether a first-seen pair gets a silent warm-up (round
// one) or is scored against an implicit previous correlation of zero.
// Evaluate and EvaluateCorrelation advance the clock themselves, so callers
// evaluating through a single detector never need BeginTick.
func (d *Detector) BeginTick(t time.Time) {
	if tn := t.UnixNano(); tn > d.curTickNano {
		d.curTickNano = tn
		d.tickCount++
	}
}

// Evaluate scores pair k at tick time t given the windowed counts: nab
// documents with both tags, na/nb with each tag, n total. It updates the
// pair's predictor with the measured correlation and returns the tick's
// Topic. Call once per pair per tick, with monotonically non-decreasing t.
func (d *Detector) Evaluate(t time.Time, k pairs.Key, nab, na, nb, n float64) Topic {
	var topic Topic
	d.EvaluateCorrelationInto(t, k, -1, d.cfg.Measure.Compute(nab, na, nb, n), nab, -1, &topic)
	return topic
}

// EvaluateInto is Evaluate writing the result through out instead of
// returning it, with a slot hint and an admission floor: the engine's
// per-shard evaluation loop reuses one Topic across tens of thousands of
// pairs per tick, so the ~100-byte struct is not copied through two return
// frames per pair. It reports whether out was filled; see
// EvaluateCorrelationInto for the hint and floor contracts.
func (d *Detector) EvaluateInto(t time.Time, k pairs.Key, hint int32, nab, na, nb, n, floor float64, out *Topic) bool {
	var corr float64
	if d.cfg.Measure == pairs.Jaccard {
		corr = pairs.ComputeJaccard(nab, na, nb, n) // inlines; Compute's switch does not
	} else {
		corr = d.cfg.Measure.Compute(nab, na, nb, n)
	}
	return d.EvaluateCorrelationInto(t, k, hint, corr, nab, floor, out)
}

// EvaluateCorrelation scores pair k against a correlation computed by the
// caller — the hook for the paper's alternative correlation notions, such
// as relative-entropy similarity over whole tag-set distributions
// (pairs.DistTracker). nab is still the windowed co-occurrence count, used
// for the significance floor. Semantics otherwise match Evaluate.
func (d *Detector) EvaluateCorrelation(t time.Time, k pairs.Key, corr, nab float64) Topic {
	var topic Topic
	d.EvaluateCorrelationInto(t, k, -1, corr, nab, -1, &topic)
	return topic
}

// EvaluateCorrelationInto is EvaluateCorrelation through an out parameter;
// see EvaluateInto. It reports whether out was filled (every field assigned,
// so a reused out carries nothing over from the previous pair).
//
// hint, when >= 0, is a caller-provided stable small integer identity for
// the pair — the engine passes the pair's tracker arena slot, which names
// the same pair for as long as the pair is tracked. The detector caches the
// hint → state resolution (see bySlot) so steady-state evaluation skips the
// map probe; a hint that no longer matches (slot reused, state released) is
// detected by key comparison and merely costs the map fallback it would
// have cost anyway. hint < 0 disables the cache for that call. Results are
// identical either way.
//
// floor is an admission threshold for callers that only keep topics scoring
// strictly above it (a running top-k heap root). The tick's score is
// max(decayed history, current error) and the decayed history is strictly
// below the stored Decay.Value for any positive elapsed time, so
// max(Value, error) upper-bounds the score without computing an
// exponential. When floor >= 0 and that bound is zero or below floor, the
// pair cannot score above the floor: the predictor and seen stamp are
// updated exactly as usual, a positive error still folds into the decayed
// history, but the Topic is not materialised and false is returned. A
// caller that keeps only Score > floor topics therefore selects exactly the
// topics it would have selected with floor < 0 (which disables skipping and
// always fills out).
//
// One deliberate economy: when the bound rejects a pair and its current
// error is zero, the decay is left untouched rather than decayed-in-place
// to t. Exponential decay composes across ticks — value·2^(-(a+b)/hl)
// versus (value·2^(-a/hl))·2^(-b/hl) — so the eventually-read score differs
// only by floating-point rounding in the last ulps, far below any ranking
// threshold; the stored value remains a valid upper bound either way (it
// only ever over-estimates), so admission decisions stay conservative and
// no pair is ever skipped that could have ranked.
func (d *Detector) EvaluateCorrelationInto(t time.Time, k pairs.Key, hint int32, corr, nab, floor float64, out *Topic) bool {
	tn := t.UnixNano()
	if tn > d.curTickNano {
		d.curTickNano = tn
		d.tickCount++
	}

	// Resolve the pair's slab entry: slot-hint cache first, map on a miss.
	var st *state
	var i int32
	firstEval := false
	if hint >= 0 && int(hint) < len(d.bySlot) {
		if j := d.bySlot[hint]; j >= 0 && d.states[j].key == k {
			i, st = j, &d.states[j]
		}
	}
	if st == nil {
		var ok bool
		i, ok = d.index[k]
		if !ok {
			firstEval = true
			st, i = d.alloc(k)
		} else {
			st = &d.states[i]
		}
		if hint >= 0 {
			for int(hint) >= len(d.bySlot) {
				d.bySlot = append(d.bySlot, -1)
			}
			d.bySlot[hint] = i
		}
	}
	st.seenNano = tn

	predicted, ready := d.predict(st, i)
	d.observe(st, i, corr)

	if !ready {
		// A pair first evaluated after round one has an implicit history
		// of zero correlation: its tags never co-occurred before, or it
		// would have been tracked. The jump from 0 to corr is exactly the
		// paper's emergent-topic signal (Eyjafjallajökull + air traffic).
		if firstEval && d.tickCount > 1 {
			predicted = 0
		} else {
			if floor >= 0 {
				if v := st.decay.Value(); v == 0 || v < floor {
					return false
				}
			}
			out.Pair = k
			out.Score = st.decay.AtCachedNano(tn, &d.cache)
			out.Correlation = corr
			out.Predicted = 0
			out.Error = 0
			out.Cooccurrence = nab
			out.At = t
			out.Warmup = true
			return true
		}
	}

	errv := corr - predicted
	if !d.cfg.UpOnly && errv < 0 {
		errv = -errv
	}
	if errv < 0 {
		errv = 0
	}
	// Insignificant pairs contribute no new error but keep their decayed
	// history ("sudden but significant increases").
	if nab < d.cfg.MinCooccurrence {
		errv = 0
	}
	if floor >= 0 {
		upper := st.decay.Value()
		if errv > upper {
			upper = errv
		}
		if upper == 0 || upper < floor {
			if errv > 0 {
				st.decay.UpdateCachedNano(tn, errv, &d.cache)
				st.keepUntilNano = 0
			}
			return false
		}
	}
	out.Pair = k
	out.Correlation = corr
	out.Predicted = predicted
	out.Error = errv
	out.Cooccurrence = nab
	out.At = t
	out.Warmup = false
	out.Score = st.decay.UpdateCachedNano(tn, errv, &d.cache)
	st.keepUntilNano = 0
	return true
}

// Score returns the current decayed score of pair k at time t without
// updating any state.
func (d *Detector) Score(t time.Time, k pairs.Key) float64 {
	i, ok := d.index[k]
	if !ok {
		return 0
	}
	return d.states[i].decay.At(t)
}

// ActiveStates returns the number of pairs with detector state.
func (d *Detector) ActiveStates() int { return len(d.index) }

// Forget drops the state of pair k.
func (d *Detector) Forget(k pairs.Key) {
	if i, ok := d.index[k]; ok {
		d.release(i)
	}
}

// Sweep drops state for pairs not in keep and for pairs whose decayed score
// at time t has fallen below minScore — both conditions bound memory to
// pairs that still matter.
func (d *Detector) Sweep(t time.Time, keep map[pairs.Key]bool, minScore float64) {
	for i := range d.states {
		st := &d.states[i]
		if st.key == (pairs.Key{}) {
			continue
		}
		if keep != nil && keep[st.key] {
			continue
		}
		if st.decay.At(t) < minScore {
			d.release(int32(i))
		}
	}
}

// SweepStale is Sweep without the keep set: it drops state for pairs that
// were not evaluated at tick time t (their seen stamp predates t) and whose
// decayed score has fallen below minScore. An engine that has just
// evaluated a snapshot at t gets exactly Sweep's keep-map semantics — every
// evaluated pair carries seen == t — without building a keep set per tick.
//
// A stale pair lingers until its decayed score crosses minScore, which with
// the paper's 2-day half-life can take weeks of ticks. Its decay state is
// frozen while stale, so the first keep decision caches a conservative
// deadline (Decay.KeepUntilNano) and later sweeps compare an integer
// instead of recomputing the exponential; the actual expiry decision is
// always made by the real At check once the deadline has passed, so the
// kept/dropped outcome per tick is identical to checking At every time.
func (d *Detector) SweepStale(t time.Time, minScore float64) {
	tn := t.UnixNano()
	for i := range d.states {
		st := &d.states[i]
		if st.key == (pairs.Key{}) || st.seenNano == tn {
			continue
		}
		if st.keepUntilNano != 0 && tn < st.keepUntilNano {
			continue // provably still at or above minScore
		}
		if st.decay.At(t) < minScore {
			d.release(int32(i))
		} else {
			st.keepUntilNano = st.decay.KeepUntilNano(minScore)
		}
	}
}
