// Package shift implements stage (iii) of the paper — shift detection:
// "We consider sudden (but significant) increases in the correlation of tag
// pairs as an indicator for an emergent topic. ... at any point in time we
// use the previous correlation values and try to predict the current ones.
// If a predicted value is far away from the real one then the topic is
// considered to be emergent and the prediction error is used as a ranking
// criterion. At any point in time the score of a topic is the maximum of
// the current prediction error and the prediction errors from the past,
// dampened appropriately using an exponential decline factor with a half
// life of approximately 2 days."
package shift

import (
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/window"
)

// DefaultHalfLife is the paper's "approximately 2 days".
const DefaultHalfLife = 48 * time.Hour

// Config parameterises a Detector.
type Config struct {
	// Measure is the correlation measure evaluated per pair.
	Measure pairs.Measure
	// Predictor selects the one-step forecaster per pair.
	Predictor predict.Kind
	// PredictorConfig tunes the forecaster.
	PredictorConfig predict.Config
	// HalfLife dampens past prediction errors. Zero means DefaultHalfLife.
	HalfLife time.Duration
	// MinCooccurrence suppresses scoring of pairs with less windowed
	// support than this ("sudden but significant"). Zero means 2.
	MinCooccurrence float64
	// UpOnly scores only increases in correlation when true (the paper
	// looks for "sudden ... increases"); when false the absolute error is
	// used, also flagging collapses.
	UpOnly bool
}

func (c Config) withDefaults() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.MinCooccurrence <= 0 {
		c.MinCooccurrence = 2
	}
	return c
}

// Topic is the evaluation result for one tag pair at one tick.
type Topic struct {
	Pair pairs.Key
	// Score is the ranking criterion: the decayed maximum of prediction
	// errors up to and including this tick.
	Score float64
	// Correlation is the measured correlation at this tick.
	Correlation float64
	// Predicted is the forecast the correlation was compared against;
	// meaningless when Warmup is true.
	Predicted float64
	// Error is the current prediction error (the "shift" magnitude).
	Error float64
	// Cooccurrence is the windowed number of documents with both tags.
	Cooccurrence float64
	// At is the evaluation time.
	At time.Time
	// Warmup reports that the pair had too little history to score.
	Warmup bool
}

// state is the per-pair incremental detector state. Decay is embedded by
// value so a new pair costs one state allocation, not two.
type state struct {
	pred  predict.Predictor
	decay window.Decay
	seen  time.Time
}

// Detector maintains per-pair predictors and decayed score maxima. It is
// not safe for concurrent use.
type Detector struct {
	cfg    Config
	states map[pairs.Key]*state
	// curTick and tickCount track evaluation rounds: pairs first seen on
	// round one get a silent warm-up (the detector has no history for
	// anything yet), while pairs appearing on later rounds are scored
	// against an implicit previous correlation of zero — they were not
	// tracked before precisely because their tags never co-occurred.
	curTick   time.Time
	tickCount int
}

// NewDetector returns a detector with the given configuration.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), states: make(map[pairs.Key]*state)}
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// BeginTick advances the detector's evaluation-round clock to t without
// evaluating anything. Sharded engines call it on every shard detector at
// the start of a tick so that a shard whose first pair arrives late still
// agrees with a single global detector on which round it is — the round
// number decides whether a first-seen pair gets a silent warm-up (round
// one) or is scored against an implicit previous correlation of zero.
// Evaluate and EvaluateCorrelation advance the clock themselves, so callers
// evaluating through a single detector never need BeginTick.
func (d *Detector) BeginTick(t time.Time) {
	if t.After(d.curTick) {
		d.curTick = t
		d.tickCount++
	}
}

// Evaluate scores pair k at tick time t given the windowed counts: nab
// documents with both tags, na/nb with each tag, n total. It updates the
// pair's predictor with the measured correlation and returns the tick's
// Topic. Call once per pair per tick, with monotonically non-decreasing t.
func (d *Detector) Evaluate(t time.Time, k pairs.Key, nab, na, nb, n float64) Topic {
	return d.EvaluateCorrelation(t, k, d.cfg.Measure.Compute(nab, na, nb, n), nab)
}

// EvaluateCorrelation scores pair k against a correlation computed by the
// caller — the hook for the paper's alternative correlation notions, such
// as relative-entropy similarity over whole tag-set distributions
// (pairs.DistTracker). nab is still the windowed co-occurrence count, used
// for the significance floor. Semantics otherwise match Evaluate.
func (d *Detector) EvaluateCorrelation(t time.Time, k pairs.Key, corr, nab float64) Topic {
	if t.After(d.curTick) {
		d.curTick = t
		d.tickCount++
	}
	st, ok := d.states[k]
	firstEval := !ok
	if !ok {
		st = &state{
			pred:  predict.New(d.cfg.Predictor, d.cfg.PredictorConfig),
			decay: window.MakeDecay(d.cfg.HalfLife),
		}
		d.states[k] = st
	}
	st.seen = t

	topic := Topic{
		Pair:         k,
		Correlation:  corr,
		Cooccurrence: nab,
		At:           t,
	}

	predicted, ready := st.pred.Predict()
	st.pred.Observe(corr)

	if !ready {
		// A pair first evaluated after round one has an implicit history
		// of zero correlation: its tags never co-occurred before, or it
		// would have been tracked. The jump from 0 to corr is exactly the
		// paper's emergent-topic signal (Eyjafjallajökull + air traffic).
		if firstEval && d.tickCount > 1 {
			predicted = 0
		} else {
			topic.Warmup = true
			topic.Score = st.decay.At(t)
			return topic
		}
	}
	topic.Predicted = predicted

	errv := corr - predicted
	if !d.cfg.UpOnly && errv < 0 {
		errv = -errv
	}
	if errv < 0 {
		errv = 0
	}
	// Insignificant pairs contribute no new error but keep their decayed
	// history ("sudden but significant increases").
	if nab < d.cfg.MinCooccurrence {
		errv = 0
	}
	topic.Error = errv
	topic.Score = st.decay.Update(t, errv)
	return topic
}

// Score returns the current decayed score of pair k at time t without
// updating any state.
func (d *Detector) Score(t time.Time, k pairs.Key) float64 {
	st, ok := d.states[k]
	if !ok {
		return 0
	}
	return st.decay.At(t)
}

// ActiveStates returns the number of pairs with detector state.
func (d *Detector) ActiveStates() int { return len(d.states) }

// Forget drops the state of pair k.
func (d *Detector) Forget(k pairs.Key) { delete(d.states, k) }

// Sweep drops state for pairs not in keep and for pairs whose decayed score
// at time t has fallen below minScore — both conditions bound memory to
// pairs that still matter.
func (d *Detector) Sweep(t time.Time, keep map[pairs.Key]bool, minScore float64) {
	for k, st := range d.states {
		if keep != nil && keep[k] {
			continue
		}
		if st.decay.At(t) < minScore {
			delete(d.states, k)
		}
	}
}

// SweepStale is Sweep without the keep set: it drops state for pairs that
// were not evaluated at tick time t (their seen stamp predates t) and whose
// decayed score has fallen below minScore. An engine that has just
// evaluated a snapshot at t gets exactly Sweep's keep-map semantics — every
// evaluated pair carries seen == t — without building a keep set per tick.
func (d *Detector) SweepStale(t time.Time, minScore float64) {
	for k, st := range d.states {
		if st.seen.Equal(t) {
			continue
		}
		if st.decay.At(t) < minScore {
			delete(d.states, k)
		}
	}
}
