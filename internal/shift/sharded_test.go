package shift

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/predict"
)

// A sharded detector fed per-shard must produce exactly the scores a single
// global detector produces, tick for tick — including the round-one warm-up
// and the "implicit zero history" rule for pairs appearing on later rounds.
func TestShardedMatchesSingleDetector(t *testing.T) {
	cfg := Config{
		Predictor:       predict.KindMovingAverage,
		PredictorConfig: predict.Config{Window: 3},
		HalfLife:        12 * time.Hour,
		MinCooccurrence: 2,
	}
	const shards = 4
	base := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(3))

	keys := make([]pairs.Key, 40)
	for i := range keys {
		keys[i] = pairs.MakeKey(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%7))
	}

	single := NewDetector(cfg)
	sharded := NewSharded(shards, cfg)

	for tick := 0; tick < 30; tick++ {
		at := base.Add(time.Duration(tick) * time.Hour)
		// A sliding subset of pairs is "tracked" each tick; later ticks
		// introduce pairs the detector has never seen.
		lo, hi := tick%10, 10+tick
		if hi > len(keys) {
			hi = len(keys)
		}
		active := keys[lo:hi]
		if len(active) > 0 {
			sharded.BeginTick(at)
		}
		for _, k := range active {
			corr := rng.Float64()
			nab := float64(rng.Intn(6))
			want := single.Evaluate(at, k, nab, corr*10, corr*12, 100)
			got := sharded.For(k).Evaluate(at, k, nab, corr*10, corr*12, 100)
			if got != want {
				t.Fatalf("tick %d pair %v: sharded %+v != single %+v", tick, k, got, want)
			}
		}
		keep := make(map[pairs.Key]bool, len(active))
		for _, k := range active {
			keep[k] = true
		}
		single.Sweep(at, keep, 1e-9)
		for i := 0; i < shards; i++ {
			sharded.Shard(i).Sweep(at, keep, 1e-9)
		}
		if got, want := sharded.ActiveStates(), single.ActiveStates(); got != want {
			t.Fatalf("tick %d: ActiveStates = %d, want %d", tick, got, want)
		}
	}
}

// BeginTick must make a shard whose first pair arrives on a later round
// agree with the global round count: the pair is scored against an implicit
// zero history rather than getting a silent warm-up.
func TestShardedBeginTickSyncsRounds(t *testing.T) {
	cfg := Config{MinCooccurrence: 1}
	sharded := NewSharded(2, cfg)
	base := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

	k := pairs.MakeKey("x", "y")
	other := 1 - k.Shard(2) // the shard that will sit idle on round one

	// Round one: only k's shard evaluates anything.
	sharded.BeginTick(base)
	r1 := sharded.For(k).Evaluate(base, k, 3, 5, 5, 10)
	if !r1.Warmup {
		t.Fatalf("round-one evaluation not warm-up: %+v", r1)
	}

	// Round two: a pair owned by the previously idle shard appears. With
	// synced rounds it must be scored (predicted = 0), not warmed up.
	k2 := pairs.MakeKey("p", "q")
	if k2.Shard(2) != other {
		// Find a key landing on the idle shard.
		for i := 0; ; i++ {
			k2 = pairs.MakeKey(fmt.Sprintf("p%d", i), "q")
			if k2.Shard(2) == other {
				break
			}
		}
	}
	at := base.Add(time.Hour)
	sharded.BeginTick(at)
	r2 := sharded.For(k2).Evaluate(at, k2, 3, 5, 5, 10)
	if r2.Warmup {
		t.Fatalf("late-shard first evaluation warmed up despite BeginTick: %+v", r2)
	}
	if r2.Predicted != 0 {
		t.Errorf("late first evaluation predicted %v, want implicit 0", r2.Predicted)
	}
}
