package shift

import (
	"errors"
	"fmt"
	"sort"

	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/window"
)

// This file is the shift detector's durability surface. Exports are
// canonical — pairs sorted by Key.Compare across all shards — and restores
// re-partition by the restoring Sharded's own shard count, so detector state
// snapshotted at one shard count restores into any other. The slot-hint
// cache (bySlot) and sweep deadline cache (keepUntilNano) are rebuildable
// and deliberately not part of the state: a restored detector repopulates
// them on first use with identical semantics.

// PairDetState is one pair's exported detector state.
type PairDetState struct {
	Key      pairs.Key
	Decay    window.DecayState
	SeenNano int64
	Pred     predict.State
}

// DetectorState is the full serializable state of a Sharded detector (or a
// single Detector, which is the one-shard case).
type DetectorState struct {
	Pairs       []PairDetState // sorted by Key.Compare
	CurTickNano int64
	TickCount   int64
}

// exportPairs appends every live slab entry's state to out, in slot order.
func (d *Detector) exportPairs(out []PairDetState) []PairDetState {
	for i := range d.states {
		st := &d.states[i]
		if st.key == (pairs.Key{}) {
			continue
		}
		ps := PairDetState{Key: st.key, Decay: st.decay.ExportState(), SeenNano: st.seenNano}
		if d.useNaive {
			ps.Pred = predict.Export(&st.naive)
		} else {
			ps.Pred = predict.Export(d.preds[i])
		}
		out = append(out, ps)
	}
	return out
}

// RestorePair loads one pair's detector state, allocating its slab entry.
// The pair must not already have state.
func (d *Detector) RestorePair(k pairs.Key, dec window.DecayState, seenNano int64, pred predict.State) error {
	if k == (pairs.Key{}) {
		return errors.New("shift: restore of a zero pair key")
	}
	if _, exists := d.index[k]; exists {
		return fmt.Errorf("shift: duplicate pair %s in restore state", k)
	}
	st, i := d.alloc(k)
	st.decay.RestoreState(dec)
	st.seenNano = seenNano
	if d.useNaive {
		return predict.Restore(&st.naive, pred)
	}
	return predict.Restore(d.preds[i], pred)
}

// setClock overwrites the detector's evaluation-round clock.
func (d *Detector) setClock(curTickNano int64, tickCount int) {
	d.curTickNano = curTickNano
	d.tickCount = tickCount
}

// ExportState returns the sharded detector's full state with pairs sorted by
// Key.Compare. The round clock is taken as the maximum across shards; the
// engine keeps shard clocks in lockstep (BeginTick), so under engine use
// every shard agrees with the exported value.
func (s *Sharded) ExportState() DetectorState {
	var st DetectorState
	st.CurTickNano = s.dets[0].curTickNano
	st.TickCount = int64(s.dets[0].tickCount)
	for _, d := range s.dets {
		if d.curTickNano > st.CurTickNano {
			st.CurTickNano = d.curTickNano
		}
		if int64(d.tickCount) > st.TickCount {
			st.TickCount = int64(d.tickCount)
		}
		st.Pairs = d.exportPairs(st.Pairs)
	}
	sort.Slice(st.Pairs, func(i, j int) bool { return st.Pairs[i].Key.Less(st.Pairs[j].Key) })
	return st
}

// RestoreState loads st into an empty sharded detector, assigning each pair
// to the shard its key hashes to and setting every shard's round clock to
// the exported value (restoring the lockstep invariant).
func (s *Sharded) RestoreState(st DetectorState) error {
	if s.ActiveStates() != 0 {
		return errors.New("shift: restore into a non-empty detector")
	}
	n := len(s.dets)
	for _, p := range st.Pairs {
		d := s.dets[p.Key.Shard(n)]
		if err := d.RestorePair(p.Key, p.Decay, p.SeenNano, p.Pred); err != nil {
			return err
		}
	}
	for _, d := range s.dets {
		d.setClock(st.CurTickNano, int(st.TickCount))
	}
	return nil
}
