// Package hotgood is hotpathalloc's clean fixture: the zero-allocation
// idioms the real ingest path uses, none of which may be diagnosed.
package hotgood

import "sort"

// Sum allocates nothing.
//
//enblogue:hotpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Fill reuses a caller-owned buffer: buf[:0] is pre-paid growth.
//
//enblogue:hotpath
func Fill(buf []int, n int) []int {
	out := buf[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Presized grows into capacity it reserved up front.
//
//enblogue:hotpath
func Presized(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// SortInts passes its comparator directly to a call — the tolerated
// func-literal position (a non-escaping comparator does not allocate).
//
//enblogue:hotpath
func SortInts(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Hoisted allocates once before the loop, not per iteration.
//
//enblogue:hotpath
func Hoisted(n int) int {
	scratch := make([]int, 0, 8)
	total := 0
	for i := 0; i < n; i++ {
		scratch = append(scratch[:0], i)
		total += scratch[0]
	}
	return total
}

// Waived carries the proof obligation for its escaping closure.
//
//enblogue:hotpath
func Waived() func() int {
	n := 0
	//enblogue:alloc-ok the closure escapes by design: it is the returned value, built once per call, never per item
	f := func() int { n++; return n }
	return f
}

// Unmarked is off the hot path: anything goes.
func Unmarked(n int) []map[int]int {
	var out []map[int]int
	for i := 0; i < n; i++ {
		out = append(out, map[int]int{i: i})
	}
	return out
}
