// Package hotbad is hotpathalloc's violating fixture: each marked line
// must produce exactly the diagnostic its want regexp describes.
package hotbad

import "fmt"

// MapPerIter builds a fresh map every iteration.
//
//enblogue:hotpath
func MapPerIter(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := map[int]int{i: i} // want `composite literal allocates on every loop iteration in hotpath MapPerIter`
		total += m[i]
	}
	return total
}

// MakeInLoop allocates a fresh slice every iteration.
//
//enblogue:hotpath
func MakeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		b := make([]int, 8) // want `make inside a loop allocates per iteration in hotpath MakeInLoop`
		total += len(b)
	}
	return total
}

// GrowNil appends into a from-nil slice: un-pre-sized growth.
//
//enblogue:hotpath
func GrowNil(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append to out grows an un-pre-sized slice inside a loop in hotpath GrowNil`
	}
	return out
}

// Format calls into fmt, which boxes every operand.
//
//enblogue:hotpath
func Format(x int) string {
	return fmt.Sprintf("%d", x) // want `call to fmt.Sprintf in hotpath Format`
}

// Closure assigns a func literal outside call-argument position.
//
//enblogue:hotpath
func Closure() func() int {
	n := 0
	f := func() int { n++; return n } // want `func literal in hotpath Closure may allocate a closure`
	return f
}

// Box converts to an interface type, boxing its operand.
//
//enblogue:hotpath
func Box(x int) any {
	return any(x) // want `conversion to interface type .* boxes its operand in hotpath Box`
}
