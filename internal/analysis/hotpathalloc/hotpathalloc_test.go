package hotpathalloc_test

import (
	"testing"

	"enblogue/internal/analysis/checktest"
	"enblogue/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	checktest.Run(t, "testdata", hotpathalloc.Analyzer, "hotgood", "hotbad")
}
