// Package hotpathalloc guards the zero-allocation ingest path won in
// PR 3 and PR 5 (steady-state Consume: 1 alloc/doc; ConsumeBatch: ~0).
// The AllocsPerRun regression tests catch a regression after the fact at
// test time; this analyzer catches the constructs that cause them at vet
// time, in any function annotated `//enblogue:hotpath`:
//
//   - map, slice, or &T{} composite literals inside a loop (a fresh heap
//     object per iteration);
//   - make() or new() inside a loop;
//   - func literals outside direct call-argument position (assigned or
//     escaping closures allocate; sort comparators passed directly to a
//     call typically do not);
//   - append in a loop to a slice variable the function declared without
//     capacity (`var s []T` / `s := []T{}`): un-pre-sized growth —
//     appending to reused buffers (`s := buf[:0]`), parameters, or
//     make-with-capacity slices is fine;
//   - any call into fmt (formatting boxes every operand);
//   - explicit conversions to interface types (boxing).
//
// A construct the optimiser provably elides — e.g. a non-escaping closure
// covered by an AllocsPerRun test — can be waived line-by-line with
// `//enblogue:alloc-ok <reason>`; the mandatory reason names the proof.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"enblogue/internal/analysis/annotation"
	"enblogue/internal/analysis/driver"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &driver.Analyzer{
	Name:  "hotpathalloc",
	Doc:   "forbid allocation-forcing constructs in //enblogue:hotpath functions",
	Match: func(pkgPath string) bool { return strings.HasPrefix(pkgPath, "enblogue") },
	Run:   run,
}

func run(pass *driver.Pass) error {
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		var idx *annotation.LineIndex // built lazily, most files have no hotpath funcs
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotation.Has(annotation.Funcs(fd), "hotpath") {
				continue
			}
			if idx == nil {
				idx = annotation.IndexFile(pass.Fset, f)
			}
			check(pass, idx, fd)
		}
	}
	return nil
}

type hotChecker struct {
	pass *driver.Pass
	idx  *annotation.LineIndex
	fd   *ast.FuncDecl
	// directArgLits are func literals appearing directly as call
	// arguments — the tolerated position.
	directArgLits map[*ast.FuncLit]bool
	// presized maps local slice vars to whether their declaration
	// pre-sizes them (make with capacity, reslice of an existing buffer,
	// parameter, copy of another value).
	presized map[*types.Var]bool
}

func check(pass *driver.Pass, idx *annotation.LineIndex, fd *ast.FuncDecl) {
	hc := &hotChecker{
		pass:          pass,
		idx:           idx,
		fd:            fd,
		directArgLits: make(map[*ast.FuncLit]bool),
		presized:      make(map[*types.Var]bool),
	}
	hc.prescan()
	hc.walk(fd.Body, 0)
}

// prescan records func-literal positions and slice-variable declarations
// before the reporting walk.
func (hc *hotChecker) prescan() {
	ast.Inspect(hc.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					hc.directArgLits[fl] = true
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				v, ok := hc.pass.TypesInfo.Defs[id].(*types.Var)
				if !ok || !isSlice(v.Type()) {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					hc.presized[v] = presizingExpr(hc.pass, n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := hc.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || !isSlice(v.Type()) {
						continue
					}
					if i < len(vs.Values) {
						hc.presized[v] = presizingExpr(hc.pass, vs.Values[i])
					} else {
						hc.presized[v] = false // var s []T — grows from nil
					}
				}
			}
		}
		return true
	})
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// presizingExpr reports whether an initialiser yields a slice whose
// append growth is pre-paid: make with explicit length/capacity, a
// reslice of an existing buffer, a call result, or any expression that is
// not a from-nothing literal.
func presizingExpr(pass *driver.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
			if len(e.Args) >= 3 {
				return true // make([]T, n, c)
			}
			if len(e.Args) == 2 {
				// make([]T, n): pre-sized unless n is literally 0.
				if bl, ok := e.Args[1].(*ast.BasicLit); ok && bl.Value == "0" {
					return false
				}
				return true
			}
			return false
		}
		return true // result of another call: its capacity is its maker's business
	case *ast.SliceExpr:
		return true // buf[:0] — reuse of an existing allocation
	case *ast.CompositeLit:
		return false // []T{} or []T{...}: grows from its literal length
	case *ast.Ident:
		return e.Name != "nil"
	default:
		return true
	}
}

// walk reports violations; loopDepth counts enclosing for/range loops.
func (hc *hotChecker) walk(n ast.Node, loopDepth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		hc.walkChildren(n, loopDepth+1)
		return
	case *ast.RangeStmt:
		hc.walkChildren(n, loopDepth+1)
		return
	case *ast.CompositeLit:
		if loopDepth > 0 && hc.allocatingLit(n) && !hc.waived(n.Pos()) {
			hc.report(n.Pos(), "composite literal allocates on every loop iteration in hotpath %s: hoist it out of the loop or reuse a buffer", hc.fd.Name.Name)
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND && loopDepth > 0 {
			if _, ok := n.X.(*ast.CompositeLit); ok && !hc.waived(n.Pos()) {
				hc.report(n.Pos(), "&composite literal allocates a heap object per loop iteration in hotpath %s", hc.fd.Name.Name)
			}
		}
	case *ast.CallExpr:
		hc.checkCall(n, loopDepth)
	case *ast.FuncLit:
		if !hc.directArgLits[n] && !hc.waived(n.Pos()) {
			hc.report(n.Pos(), "func literal in hotpath %s may allocate a closure: hoist it to a method or annotate //enblogue:alloc-ok <proof> if it provably does not escape", hc.fd.Name.Name)
		}
		hc.walkChildren(n, loopDepth)
		return
	}
	hc.walkChildren(n, loopDepth)
}

func (hc *hotChecker) walkChildren(n ast.Node, loopDepth int) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		if child != nil {
			hc.walk(child, loopDepth)
			return false // walk recursed already
		}
		return true
	})
}

func (hc *hotChecker) checkCall(call *ast.CallExpr, loopDepth int) {
	// Conversions to interface types box their operand.
	if tv, ok := hc.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && !hc.waived(call.Pos()) {
			hc.report(call.Pos(), "conversion to interface type %s boxes its operand in hotpath %s", tv.Type, hc.fd.Name.Name)
		}
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if loopDepth > 0 && (fun.Name == "make" || fun.Name == "new") && isBuiltin(hc.pass, fun) && !hc.waived(call.Pos()) {
			hc.report(call.Pos(), "%s inside a loop allocates per iteration in hotpath %s: hoist it or reuse a buffer", fun.Name, hc.fd.Name.Name)
		}
		if fun.Name == "append" && isBuiltin(hc.pass, fun) && loopDepth > 0 {
			hc.checkAppend(call)
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := hc.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" && !hc.waived(call.Pos()) {
				hc.report(call.Pos(), "call to fmt.%s in hotpath %s: formatting boxes every operand; build strings by hand or move formatting off the hot path", fun.Sel.Name, hc.fd.Name.Name)
			}
		}
	}
}

func isBuiltin(pass *driver.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func (hc *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	v, ok := hc.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	presized, declaredHere := hc.presized[v]
	if declaredHere && !presized && !hc.waived(call.Pos()) {
		hc.report(call.Pos(), "append to %s grows an un-pre-sized slice inside a loop in hotpath %s: declare it with make(..., 0, cap) or reuse a buffer (buf[:0])", id.Name, hc.fd.Name.Name)
	}
}

// allocatingLit reports whether a composite literal heap-allocates when
// (re)built: map and slice literals do; struct/array values do not.
func (hc *hotChecker) allocatingLit(cl *ast.CompositeLit) bool {
	tv, ok := hc.pass.TypesInfo.Types[cl]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

func (hc *hotChecker) waived(pos token.Pos) bool {
	anns := hc.idx.At(pos, "alloc-ok")
	for _, a := range anns {
		if a.Reason() != "" {
			return true
		}
		hc.report(a.Pos, "enblogue:alloc-ok needs a reason: name the proof that this construct does not allocate")
		return true
	}
	return false
}

func (hc *hotChecker) report(pos token.Pos, format string, args ...any) {
	hc.pass.Reportf(pos, format, args...)
}
