// Package analysis registers the enbloguevet analyzer suite: four
// project-specific invariant checkers built on the dependency-free driver
// in internal/analysis/driver. See DESIGN.md §9 for the invariants each
// one machine-checks and the //enblogue: annotation grammar they share.
package analysis

import (
	_ "embed"

	"enblogue/internal/analysis/detdiscipline"
	"enblogue/internal/analysis/driver"
	"enblogue/internal/analysis/hotpathalloc"
	"enblogue/internal/analysis/lockdiscipline"
	"enblogue/internal/analysis/wirestable"
)

// wireManifestJSON is the committed record of the /v1 wire surface;
// wirestable diffs source against it. Regenerate with
// `enbloguevet -write-wiremanifest` and review the diff.
//
//go:embed wiremanifest.json
var wireManifestJSON []byte

// WireManifestPath locates the committed manifest relative to the module
// root, for the regeneration path.
const WireManifestPath = "internal/analysis/wiremanifest.json"

// WireManifest parses the embedded manifest.
func WireManifest() (wirestable.Manifest, error) {
	return wirestable.ParseManifest(wireManifestJSON)
}

// Suite returns every enbloguevet analyzer, wired to the committed wire
// manifest, in stable order.
func Suite() ([]*driver.Analyzer, error) {
	m, err := WireManifest()
	if err != nil {
		return nil, err
	}
	return []*driver.Analyzer{
		detdiscipline.Analyzer,
		lockdiscipline.Analyzer,
		hotpathalloc.Analyzer,
		wirestable.New(m),
	}, nil
}

// GenerateWireManifest re-derives the wire manifest for a whole module
// from source — the `enbloguevet -write-wiremanifest` path.
func GenerateWireManifest(modPath, modDir string) (wirestable.Manifest, error) {
	l := driver.NewLoader(modPath, modDir)
	paths, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	out := make(wirestable.Manifest)
	for _, p := range paths {
		lp, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pass := &driver.Pass{Fset: l.Fset, Files: lp.Files, Pkg: lp.Pkg, TypesInfo: lp.Info}
		for key, fields := range wirestable.ManifestFor(pass) {
			out[key] = fields
		}
	}
	return out, nil
}
