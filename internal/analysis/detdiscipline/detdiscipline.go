// Package detdiscipline enforces the engine's determinism contract: the
// ranking pipeline is event-time driven and must produce bit-identical
// rankings for every shard count, batch size, and replay of the same
// stream (DESIGN.md §4, §8). Non-test code in the ranking-affecting
// packages therefore must not
//
//   - read the wall clock (time.Now / time.Since / time.Until) — event
//     timestamps carried by the stream are the only clock;
//   - use math/rand or math/rand/v2 — there is no legitimate randomness
//     in the scoring path;
//   - iterate a map without declaring why the order cannot reach ranked
//     state: Go randomises map iteration order per run, so an
//     unannotated `range m` is a latent nondeterminism bug. Iterations
//     that are provably order-independent (commutative folds over ints,
//     collect-then-sort, per-key deletes) carry an
//     `//enblogue:unordered <reason>` annotation on or above the range
//     statement; the reason is mandatory and is the reviewable proof
//     obligation.
package detdiscipline

import (
	"go/ast"
	"go/types"

	"enblogue/internal/analysis/annotation"
	"enblogue/internal/analysis/driver"
)

// Packages is the determinism perimeter: every package whose state can
// reach a ranking. The server, broker, and ingest layers outside it may
// use wall clocks freely (uptime stats, flush timers).
var Packages = map[string]bool{
	"enblogue/internal/core":     true,
	"enblogue/internal/pairs":    true,
	"enblogue/internal/shift":    true,
	"enblogue/internal/window":   true,
	"enblogue/internal/tagstats": true,
	"enblogue/internal/intern":   true,
	"enblogue/internal/sketch":   true,
	"enblogue/internal/tier":     true,
}

// Analyzer is the detdiscipline analyzer.
var Analyzer = &driver.Analyzer{
	Name:  "detdiscipline",
	Doc:   "forbid wall clocks, randomness, and unannotated map iteration in ranking-affecting packages",
	Match: func(pkgPath string) bool { return Packages[pkgPath] },
	Run:   run,
}

func run(pass *driver.Pass) error {
	for _, f := range pass.Files {
		if len(f.Decls) == 0 || pass.TestFile(f.Pos()) {
			continue
		}
		idx := annotation.IndexFile(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				checkImport(pass, n)
			case *ast.SelectorExpr:
				checkWallClock(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, idx, n)
			}
			return true
		})
	}
	return nil
}

func checkImport(pass *driver.Pass, spec *ast.ImportSpec) {
	switch spec.Path.Value {
	case `"math/rand"`, `"math/rand/v2"`:
		pass.Reportf(spec.Pos(),
			"import of %s in deterministic engine package %s: rankings must be replayable, use no randomness",
			spec.Path.Value, pass.Pkg.Path())
	}
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func checkWallClock(pass *driver.Pass, sel *ast.SelectorExpr) {
	if !wallClockFuncs[sel.Sel.Name] {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	pass.Reportf(sel.Pos(),
		"call to time.%s in deterministic engine package %s: the engine is event-time driven, derive times from the stream",
		sel.Sel.Name, pass.Pkg.Path())
}

func checkMapRange(pass *driver.Pass, idx *annotation.LineIndex, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	anns := idx.At(rs.Pos(), "unordered")
	if len(anns) > 0 {
		if anns[0].Reason() == "" {
			pass.Reportf(anns[0].Pos, "enblogue:unordered needs a reason: state why this iteration order cannot reach a ranking")
		}
		return
	}
	pass.Reportf(rs.Pos(),
		"unannotated map iteration in deterministic engine package %s: map order is randomised per run; prove order-independence and annotate //enblogue:unordered <reason>, or iterate a sorted slice",
		pass.Pkg.Path())
}
