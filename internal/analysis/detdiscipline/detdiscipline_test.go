package detdiscipline_test

import (
	"testing"

	"enblogue/internal/analysis/checktest"
	"enblogue/internal/analysis/detdiscipline"
)

func TestDetDiscipline(t *testing.T) {
	checktest.Run(t, "testdata", detdiscipline.Analyzer, "detgood", "detbad")
}
