// Package detgood is detdiscipline's clean fixture: every construct here
// is the approved deterministic idiom and must produce no diagnostics.
package detgood

import (
	"sort"
	"time"
)

// Sorted iterates a map the approved way: collect, sort, use.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//enblogue:unordered collect-then-sort: keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EventTime uses stream-carried timestamps; constructing and comparing
// time.Time values is fine, only reading the host clock is not.
func EventTime(t time.Time, cutoff time.Time) bool {
	return t.After(cutoff)
}

// SliceRange is not a map iteration and needs no annotation.
func SliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
