// Package detbad is detdiscipline's violating fixture: each marked line
// must produce exactly the diagnostic its want regexp describes.
package detbad

import (
	"math/rand" // want `import of "math/rand" in deterministic engine package`
	"time"
)

// Clock reads the host clock, which the event-time contract forbids.
func Clock() int64 {
	return time.Now().UnixNano() // want `call to time.Now in deterministic engine package`
}

// Elapsed is a wall-clock read too, via time.Since.
func Elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `call to time.Since in deterministic engine package`
}

// Roll keeps the math/rand import referenced.
func Roll() int {
	return rand.Intn(6)
}

// Sum iterates a map with no order-independence proof.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `unannotated map iteration in deterministic engine package`
		total += v
	}
	return total
}
