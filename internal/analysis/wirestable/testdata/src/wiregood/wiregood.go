// Package wiregood is wirestable's clean fixture: the struct matches the
// manifest the test injects exactly.
package wiregood

// PingView is a frozen wire struct.
//
//enblogue:wire
type PingView struct {
	Msg string `json:"msg"`
	Seq int    `json:"seq"`

	// internal is unexported: not on the wire, not in the manifest.
	internal int
}

// Plain has no wire annotation and is invisible to the analyzer.
type Plain struct {
	Whatever string `json:"whatever"`
}

func (p *PingView) bump() { p.internal++ }

var _ = (&PingView{}).bump
