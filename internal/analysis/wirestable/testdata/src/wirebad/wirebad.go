// Package wirebad is wirestable's violating fixture: a renamed tag, a
// removed field, an unregistered struct, and a manifest entry whose
// struct vanished.
package wirebad // want `LostView is in wiremanifest.json but no`

// OldView drifted from the manifest: Msg's wire name changed and Gone was
// deleted outright.
//
//enblogue:wire
type OldView struct { // want `field Msg renamed on the wire: manifest says "msg", source says "msgX"` `lost field Gone \(json "gone"\) recorded in wiremanifest.json`
	Msg string `json:"msgX"`
}

// NewView was never recorded.
//
//enblogue:wire
type NewView struct { // want `wire struct wirebad.NewView is not in wiremanifest.json`
	A int `json:"a"`
}
