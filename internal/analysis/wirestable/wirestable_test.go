package wirestable_test

import (
	"testing"

	"enblogue/internal/analysis/checktest"
	"enblogue/internal/analysis/wirestable"
)

func TestWireStableClean(t *testing.T) {
	manifest := wirestable.Manifest{
		"wiregood.PingView": {"Msg": "msg", "Seq": "seq"},
	}
	checktest.Run(t, "testdata", wirestable.New(manifest), "wiregood")
}

func TestWireStableDrift(t *testing.T) {
	manifest := wirestable.Manifest{
		"wirebad.OldView":  {"Msg": "msg", "Gone": "gone"},
		"wirebad.LostView": {"A": "a"},
	}
	checktest.Run(t, "testdata", wirestable.New(manifest), "wirebad")
}

func TestManifestRoundTrip(t *testing.T) {
	m := wirestable.Manifest{"p.V": {"A": "a"}}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := wirestable.ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back["p.V"]["A"] != "a" {
		t.Fatalf("round trip lost data: %v", back)
	}
}
