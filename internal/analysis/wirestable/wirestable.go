// Package wirestable freezes the /v1 wire surface. Every struct the
// server marshals to clients carries an `//enblogue:wire` annotation; its
// JSON field names are recorded in a committed manifest
// (internal/analysis/wiremanifest.json). The analyzer re-derives the wire
// shape from the source on every vet run and diffs it against the
// manifest:
//
//   - a manifest field missing from the struct = a removal or rename that
//     would break deployed clients — vet error;
//   - a struct field absent from the manifest = a new field — vet error
//     until the manifest is regenerated (`enbloguevet -write-wiremanifest`)
//     and the diff is reviewed;
//   - an annotated struct missing from the manifest, or a manifest entry
//     whose struct lost its annotation — vet error.
//
// The manifest is the reviewable artifact: wire changes show up as a JSON
// diff in the same commit as the code change, and an unreviewed change
// cannot pass CI.
package wirestable

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"reflect"
	"sort"
	"strings"

	"enblogue/internal/analysis/annotation"
	"enblogue/internal/analysis/driver"
)

// Manifest maps "pkgpath.StructName" to that struct's wire fields:
// Go field name → JSON name.
type Manifest map[string]map[string]string

// ParseManifest decodes a committed wiremanifest.json.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wiremanifest.json: %w", err)
	}
	return m, nil
}

// Encode renders a manifest as stable, diff-friendly JSON.
func (m Manifest) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// New returns a wirestable analyzer checking against the given committed
// manifest. The registry package owns the embedded bytes; tests inject
// purpose-built manifests.
func New(manifest Manifest) *driver.Analyzer {
	return &driver.Analyzer{
		Name:  "wirestable",
		Doc:   "diff //enblogue:wire struct JSON shapes against the committed wire manifest",
		Match: func(pkgPath string) bool { return strings.HasPrefix(pkgPath, "enblogue") },
		Run:   func(pass *driver.Pass) error { return run(pass, manifest) },
	}
}

// wireStruct is one annotated struct found in source.
type wireStruct struct {
	key    string // pkgpath.Name
	ts     *ast.TypeSpec
	fields map[string]string // Go field name → wire name
}

func run(pass *driver.Pass, manifest Manifest) error {
	found := Collect(pass)
	pkgPrefix := pass.Pkg.Path() + "."

	byKey := make(map[string]*wireStruct, len(found))
	for _, ws := range found {
		byKey[ws.key] = ws
	}

	// Manifest entries owned by this package whose struct vanished or
	// lost its annotation.
	var owned []string
	for key := range manifest {
		if strings.HasPrefix(key, pkgPrefix) && !strings.Contains(strings.TrimPrefix(key, pkgPrefix), ".") {
			owned = append(owned, key)
		}
	}
	sort.Strings(owned)
	for _, key := range owned {
		if byKey[key] == nil {
			pos := pass.Files[0].Pos()
			pass.Reportf(pos,
				"wire struct %s is in wiremanifest.json but no //enblogue:wire struct defines it: removing a wire type breaks deployed clients; if intended, regenerate the manifest with enbloguevet -write-wiremanifest and review the diff", key)
		}
	}

	for _, ws := range found {
		want, ok := manifest[ws.key]
		if !ok {
			pass.Reportf(ws.ts.Pos(),
				"wire struct %s is not in wiremanifest.json: run enbloguevet -write-wiremanifest and commit the diff", ws.key)
			continue
		}
		diffStruct(pass, ws, want)
	}
	return nil
}

func diffStruct(pass *driver.Pass, ws *wireStruct, want map[string]string) {
	var missing []string
	for goName, wireName := range want {
		got, ok := ws.fields[goName]
		if !ok {
			missing = append(missing, fmt.Sprintf("%s (json %q)", goName, wireName))
			continue
		}
		if got != wireName {
			pass.Reportf(ws.ts.Pos(),
				"wire struct %s field %s renamed on the wire: manifest says %q, source says %q: renaming breaks deployed clients; if intended, regenerate the manifest and review the diff",
				ws.key, goName, wireName, got)
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		pass.Reportf(ws.ts.Pos(),
			"wire struct %s lost field %s recorded in wiremanifest.json: removing a wire field breaks deployed clients; if intended, regenerate the manifest and review the diff",
			ws.key, m)
	}
	var added []string
	for goName, wireName := range ws.fields {
		if _, ok := want[goName]; !ok {
			added = append(added, fmt.Sprintf("%s (json %q)", goName, wireName))
		}
	}
	sort.Strings(added)
	for _, a := range added {
		pass.Reportf(ws.ts.Pos(),
			"wire struct %s gained field %s not in wiremanifest.json: run enbloguevet -write-wiremanifest and commit the diff",
			ws.key, a)
	}
}

// Collect finds every //enblogue:wire struct in the pass's package and
// derives its wire shape. Shared by the analyzer (diff mode) and the
// -write-wiremanifest regeneration path.
func Collect(pass *driver.Pass) []*wireStruct {
	var out []*wireStruct
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if !wireAnnotated(gd, ts) {
					continue
				}
				out = append(out, &wireStruct{
					key:    pass.Pkg.Path() + "." + ts.Name.Name,
					ts:     ts,
					fields: wireFields(st),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// ManifestFor builds the manifest fragment for one package — the
// regeneration path.
func ManifestFor(pass *driver.Pass) Manifest {
	m := make(Manifest)
	for _, ws := range Collect(pass) {
		m[ws.key] = ws.fields
	}
	return m
}

// wireAnnotated accepts the annotation on the TypeSpec's own doc comment
// or, for single-spec declarations, the GenDecl's.
func wireAnnotated(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	if annotation.Has(annotation.Parse(ts.Doc), "wire") {
		return true
	}
	if len(gd.Specs) == 1 && annotation.Has(annotation.Parse(gd.Doc), "wire") {
		return true
	}
	return false
}

// wireFields derives the JSON object shape of a struct the way
// encoding/json does: exported fields only, names from the json tag,
// falling back to the Go name; `json:"-"` fields are off the wire.
func wireFields(st *ast.StructType) map[string]string {
	fields := make(map[string]string)
	for _, field := range st.Fields.List {
		tag := ""
		if field.Tag != nil {
			// field.Tag.Value includes the backquotes.
			raw := strings.Trim(field.Tag.Value, "`")
			tag = reflect.StructTag(raw).Get("json")
		}
		name, _, _ := strings.Cut(tag, ",")
		for _, id := range field.Names {
			if !id.IsExported() {
				continue
			}
			switch name {
			case "-":
				// explicitly off the wire
			case "":
				fields[id.Name] = id.Name
			default:
				fields[id.Name] = name
			}
		}
		// Embedded fields: record under the type name; encoding/json
		// inlines them, but a change to the embed is still a wire change
		// worth flagging.
		if len(field.Names) == 0 {
			if id := embeddedName(field.Type); id != "" && name != "-" {
				wire := name
				if wire == "" {
					wire = "(inline)"
				}
				fields["~embed:"+id] = wire
			}
		}
	}
	return fields
}

func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
