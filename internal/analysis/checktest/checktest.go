// Package checktest is the suite's analysistest equivalent: it loads a
// package from an analyzer's testdata/src tree, runs the analyzer, and
// diffs the reported diagnostics against `// want` expectations embedded
// in the test sources.
//
// Expectation grammar, one per offending line (same line or trailing):
//
//	x := foo() // want `regexp` `another regexp`
//
// Every diagnostic must match a want on its line, every want must be hit
// exactly once, and unmatched members of either set fail the test with
// exact positions — so the testdata packages double as a precise
// specification of each analyzer's diagnostics.
package checktest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"enblogue/internal/analysis/driver"
)

var wantRE = regexp.MustCompile("`([^`]+)`")

func readFile(name string) (string, error) {
	data, err := os.ReadFile(name)
	return string(data), err
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkgname> (relative to the calling test's
// directory), analyzes it, and asserts the diagnostics match the // want
// expectations. Packages are loaded in the order given, sharing one fact
// set, so a later package can exercise facts exported by an earlier one.
func Run(t *testing.T, testdata string, a *driver.Analyzer, pkgnames ...string) {
	t.Helper()
	mod, modDir, err := driver.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := driver.NewLoader(mod, modDir)
	facts := driver.NewFactSet()
	for _, name := range pkgnames {
		dir := filepath.Join(testdata, "src", name)
		lp, err := l.LoadDir(dir, name)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		diags := driver.RunForTest(t, a, l.Fset, lp, facts)
		checkWants(t, l.Fset, name, dir, diags)
	}
}

func checkWants(t *testing.T, fset *token.FileSet, pkg, dir string, diags []driver.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, dir)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pkg, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matched `%s`", pkg, w.file, w.line, w.raw)
		}
	}
}

func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.line == line && w.file == file && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants re-parses the package's comments for `// want` markers.
func collectWants(t *testing.T, fset *token.FileSet, dir string) []*want {
	t.Helper()
	var wants []*want
	fset.Iterate(func(f *token.File) bool {
		if filepath.Dir(f.Name()) != dir {
			return true
		}
		src, err := readFile(f.Name())
		if err != nil {
			t.Fatal(err)
			return false
		}
		for i, line := range strings.Split(src, "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(marker, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", f.Name(), i+1, m[1], err)
				}
				wants = append(wants, &want{file: f.Name(), line: i + 1, re: re, raw: m[1]})
			}
		}
		return true
	})
	return wants
}
