package driver

import (
	"encoding/json"
	"sort"
	"strings"
)

// A FactSet holds every fact visible during a run, keyed by package path,
// then analyzer name, then fact key. Facts are opaque strings: each
// analyzer defines its own key/value grammar (see the analyzer packages).
//
// In standalone mode one FactSet lives for the whole run and packages are
// analyzed in dependency order, so facts simply accumulate. In unit mode
// the set is rebuilt per compilation unit from the vetx files `go vet`
// hands us for our dependencies, and the unit's merged view is written
// back out as its own vetx file — transitively re-exporting upstream
// facts, exactly like x/tools fact serialization, so a package two hops
// away still sees them.
type FactSet struct {
	byPkg map[string]map[string]map[string]string
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{byPkg: make(map[string]map[string]map[string]string)}
}

func (fs *FactSet) put(pkg, analyzer, key, value string) {
	byA := fs.byPkg[pkg]
	if byA == nil {
		byA = make(map[string]map[string]string)
		fs.byPkg[pkg] = byA
	}
	kv := byA[analyzer]
	if kv == nil {
		kv = make(map[string]string)
		byA[analyzer] = kv
	}
	kv[key] = value
}

func (fs *FactSet) get(pkg, analyzer, key string) (string, bool) {
	v, ok := fs.byPkg[pkg][analyzer][key]
	return v, ok
}

// withPrefix returns all facts of one analyzer across every package whose
// key starts with prefix, sorted by (key, value) for determinism.
func (fs *FactSet) withPrefix(analyzer, prefix string) []FactKV {
	var out []FactKV
	for _, byA := range fs.byPkg {
		for k, v := range byA[analyzer] {
			if strings.HasPrefix(k, prefix) {
				out = append(out, FactKV{k, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Encode serialises the whole set (own facts plus re-exported upstream
// facts) as deterministic JSON for a vetx file.
func (fs *FactSet) Encode() ([]byte, error) {
	return json.Marshal(fs.byPkg)
}

// Merge decodes a vetx payload produced by Encode and folds it in.
// Earlier entries win on conflict, which cannot happen in practice: a
// fact's owning package writes it identically in every unit that
// re-exports it.
func (fs *FactSet) Merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in map[string]map[string]map[string]string
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	for pkg, byA := range in {
		for analyzer, kv := range byA {
			for k, v := range kv {
				if _, exists := fs.get(pkg, analyzer, k); !exists {
					fs.put(pkg, analyzer, k, v)
				}
			}
		}
	}
	return nil
}
