// Package driver is a minimal, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. It exists
// because this repository vendors nothing — the x/tools module is not
// available offline — yet the engine's invariants (determinism, lock
// discipline, hot-path allocation, wire stability) deserve a vet-grade
// guardian. The framework supports two drive modes:
//
//   - standalone: load the whole module from source (source.go) and run
//     every analyzer over every package — `enbloguevet ./...`;
//   - unit: act as a `go vet -vettool=` backend, one compilation unit per
//     invocation, types from export data, facts via vetx files (unit.go).
//
// Both modes feed identical Pass values to the analyzers, so diagnostics
// are the same whichever driver found them.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fact files.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Match, when non-nil, restricts which package paths the drivers run
	// the analyzer on (test harnesses bypass it and call Run directly).
	// It receives the plain import path, never the "pkg [pkg.test]" form.
	Match func(pkgPath string) bool
	// Run performs the check. Diagnostics go through pass.Reportf; facts
	// for downstream packages through pass.ExportFact.
	Run func(pass *Pass) error
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass connects one Analyzer run to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *FactSet
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFact publishes a (key, value) fact about the current package,
// visible to later passes of the same analyzer over importing packages.
func (p *Pass) ExportFact(key, value string) {
	p.facts.put(p.Pkg.Path(), p.Analyzer.Name, key, value)
}

// Fact looks up a fact exported by this analyzer for the given package
// (the current package included).
func (p *Pass) Fact(pkgPath, key string) (string, bool) {
	return p.facts.get(pkgPath, p.Analyzer.Name, key)
}

// FactsWithPrefix returns every visible fact of this analyzer whose key
// starts with prefix, as sorted "key\x00value" pairs — deterministic
// iteration for callers that need to scan the fact space.
func (p *Pass) FactsWithPrefix(prefix string) []FactKV {
	return p.facts.withPrefix(p.Analyzer.Name, prefix)
}

// TestFile reports whether pos lies in a _test.go file. All four enblogue
// analyzers carve test files out: tests legitimately use wall clocks,
// randomness, closures, and lock gymnastics that production code may not.
func (p *Pass) TestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// FactKV is one fact key/value pair.
type FactKV struct{ Key, Value string }

// runAnalyzers executes every matching analyzer against one package and
// returns the diagnostics in (position, analyzer) order. The FactSet is
// shared across packages by the calling driver; each run may both read
// upstream facts and export its own.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, facts *FactSet) ([]Diagnostic, error) {

	var diags []Diagnostic
	plainPath, _, _ := strings.Cut(pkg.Path(), " ")
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(plainPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// RunForTest runs one analyzer over a loaded package against a
// caller-owned fact set, bypassing Match — the checktest harness's entry
// point. The error return of the analyzer fails the test via errf.
func RunForTest(errf interface{ Fatalf(string, ...any) }, a *Analyzer,
	fset *token.FileSet, lp *LoadedPackage, facts *FactSet) []Diagnostic {

	unmatched := *a
	unmatched.Match = nil
	diags, err := runAnalyzers([]*Analyzer{&unmatched}, fset, lp.Files, lp.Pkg, lp.Info, facts)
	if err != nil {
		errf.Fatalf("analyzer %s: %v", a.Name, err)
	}
	return diags
}

// newTypesInfo returns a fully populated types.Info ready for Check.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
