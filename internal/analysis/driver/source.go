package driver

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A LoadedPackage is one source-loaded, type-checked package plus
// everything a Pass needs.
type LoadedPackage struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Loader type-checks module packages from source. Standard-library
// imports resolve through the stdlib source importer (offline, no go
// command); module-internal imports recurse through the loader itself, so
// the whole module checks without export data or network access.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modDir  string
	std     types.ImporterFrom
	pkgs    map[string]*LoadedPackage
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory modDir whose
// module path is modPath (from go.mod).
func NewLoader(modPath, modDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*LoadedPackage),
		loading: make(map[string]bool),
	}
}

// ModuleRoot locates the enclosing module of dir: it walks upward to the
// first go.mod and returns (module path, module dir).
func ModuleRoot(dir string) (string, string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modDir, 0)
}

// ImportFrom implements types.ImporterFrom: module paths load from source
// through the loader, everything else through the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		lp, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load type-checks one module package by import path (memoised).
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
	lp, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = lp
	return lp, nil
}

// LoadDir type-checks the package in an arbitrary directory (used by the
// checktest harness for testdata packages), under the given display path.
// The result is not memoised under a module path.
func (l *Loader) LoadDir(dir, asPath string) (*LoadedPackage, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) (*LoadedPackage, error) {
	// go/build resolves build constraints for the host platform and
	// splits test files out, with no go command and no network.
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{Importer: l}
	info := newTypesInfo()
	pkg, err := tc.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &LoadedPackage{Path: path, Files: files, Pkg: pkg, Info: info}, nil
}

// ModulePackages returns the import paths of every package in the module,
// in deterministic dependency-friendly (lexicographic) order, skipping
// testdata, hidden, and vendor-style directories.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.modDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.modDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.modDir, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedupSorted(paths)
	return paths, nil
}

func dedupSorted(in []string) []string {
	out := in[:0]
	for _, s := range in {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// CheckModule loads every module package and runs the analyzers over each
// in dependency order (imports before importers, so facts flow forward).
// It returns all diagnostics sorted by position.
func CheckModule(analyzers []*Analyzer, modPath, modDir string) (*token.FileSet, []Diagnostic, error) {
	l := NewLoader(modPath, modDir)
	paths, err := l.ModulePackages()
	if err != nil {
		return nil, nil, err
	}
	// Load everything first: Load recurses into module imports, so the
	// memo map fills in dependency order regardless of walk order.
	loaded := make(map[string]*LoadedPackage, len(paths))
	for _, p := range paths {
		lp, err := l.Load(p)
		if err != nil {
			return nil, nil, err
		}
		loaded[p] = lp
	}
	order := topoOrder(paths, loaded, modPath)

	facts := NewFactSet()
	var all []Diagnostic
	for _, p := range order {
		lp := loaded[p]
		diags, err := runAnalyzers(analyzers, l.Fset, lp.Files, lp.Pkg, lp.Info, facts)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, diags...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Pos < all[j].Pos })
	return l.Fset, all, nil
}

// topoOrder sorts package paths so that every package follows its module
// imports (ties broken lexicographically for determinism).
func topoOrder(paths []string, loaded map[string]*LoadedPackage, modPath string) []string {
	var order []string
	seen := make(map[string]bool, len(paths))
	var visit func(p string)
	visit = func(p string) {
		if seen[p] {
			return
		}
		seen[p] = true
		lp := loaded[p]
		if lp == nil {
			return
		}
		var deps []string
		for _, imp := range lp.Pkg.Imports() {
			ip := imp.Path()
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				deps = append(deps, ip)
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			visit(d)
		}
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}
