package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// UnitConfig mirrors the JSON compilation-unit description `go vet`
// writes for a -vettool backend (the unitchecker protocol): one package,
// its sources, and where to find dependency type/fact information.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one `go vet -vettool` compilation unit: parse the
// unit's sources, type-check against the export data the go command
// provides, import upstream facts from vetx files, run the analyzers, and
// write this unit's facts back out. It returns the diagnostics (nil in
// VetxOnly mode) for the caller to print, and never prints itself.
func RunUnit(cfgPath string, analyzers []*Analyzer) (*token.FileSet, []Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("cannot decode vet config %s: %w", cfgPath, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	fset := token.NewFileSet()

	// Nothing to check and nothing to say: still honour the protocol by
	// writing an (empty) vetx file, but skip parsing and type-checking —
	// go vet drives every dependency unit through the tool for fact
	// propagation, and the stdlib does not need our facts.
	if !unitMatches(cfg.ImportPath, analyzers) {
		facts := NewFactSet()
		if err := writeVetx(cfg, facts); err != nil {
			return nil, nil, err
		}
		return fset, nil, nil
	}

	files, err := parseUnitFiles(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return fset, nil, nil
		}
		return nil, nil, err
	}
	tc := &types.Config{
		Importer:  unitImporter(cfg, fset),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return fset, nil, nil
		}
		return nil, nil, err
	}

	facts := NewFactSet()
	// Deterministic merge order (paths sorted) so conflicting writes —
	// which the fact grammars rule out anyway — resolve identically from
	// run to run.
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			return nil, nil, fmt.Errorf("reading facts of %s: %w", p, err)
		}
		if err := facts.Merge(data); err != nil {
			return nil, nil, fmt.Errorf("decoding facts of %s: %w", p, err)
		}
	}

	diags, err := runAnalyzers(analyzers, fset, files, pkg, info, facts)
	if err != nil {
		return nil, nil, err
	}
	if err := writeVetx(cfg, facts); err != nil {
		return nil, nil, err
	}
	if cfg.VetxOnly {
		return fset, nil, nil
	}
	return fset, diags, nil
}

func parseUnitFiles(fset *token.FileSet, cfg *UnitConfig) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func unitMatches(importPath string, analyzers []*Analyzer) bool {
	plain, _, _ := strings.Cut(importPath, " ")
	for _, a := range analyzers {
		if a.Match == nil || a.Match(plain) {
			return true
		}
	}
	return false
}

// unitImporter resolves imports through the export-data files the go
// command wrote for the unit's dependencies, exactly as the reference
// unitchecker does: ImportMap resolves vendoring, PackageFile locates the
// compiler's export data, and the stdlib gc importer parses it.
func unitImporter(cfg *UnitConfig, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func writeVetx(cfg *UnitConfig, facts *FactSet) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := facts.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// PrintVersion implements the `-V=full` half of the go vet tool protocol:
// the build system hashes the executable into the tool's version string
// so its build cache invalidates when the tool changes.
func PrintVersion() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return nil
}

// PrintFlagsJSON implements the `-flags` half of the protocol: `go vet`
// asks the tool which flags it understands before forwarding any.
func PrintFlagsJSON(flags []struct {
	Name  string
	Bool  bool
	Usage string
}) error {
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}
