// Package annotation parses the `//enblogue:` machine-checked comment
// grammar that the analysis suite enforces (see DESIGN.md §9):
//
//	//enblogue:requires <lock-class>          (func doc)  callers must hold the class
//	//enblogue:acquires <lock-class>          (func doc)  takes and releases the class internally
//	//enblogue:hotpath                        (func doc)  no allocation-forcing constructs inside
//	//enblogue:lock <class> <order>           (field doc/trailing)  declares a mutex field's class;
//	                                          lower order = outermost, classes must be acquired in
//	                                          ascending order
//	//enblogue:wire                           (type doc)  struct is part of the frozen /v1 contract
//	//enblogue:unordered <reason>             (stmt line or line above)  map iteration is provably
//	                                          order-independent; reason is mandatory
//	//enblogue:alloc-ok <reason>              (stmt line or line above)  waives one hotpath
//	                                          allocation diagnostic; reason is mandatory
//
// An annotation is a single comment line starting exactly with
// "//enblogue:" (no space — mirroring //go:build), followed by a verb and
// space-separated arguments.
package annotation

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker opening every annotation.
const Prefix = "//enblogue:"

// An Ann is one parsed annotation.
type Ann struct {
	Verb string   // "requires", "acquires", "hotpath", "lock", "wire", "unordered", "alloc-ok"
	Args []string // remaining space-separated tokens
	Pos  token.Pos
}

// Arg returns the i-th argument or "".
func (a Ann) Arg(i int) string {
	if i < len(a.Args) {
		return a.Args[i]
	}
	return ""
}

// Reason returns the whole argument list joined — the free-text
// justification of unordered / alloc-ok waivers.
func (a Ann) Reason() string { return strings.Join(a.Args, " ") }

// Parse extracts annotations from one comment group (nil-safe).
func Parse(cg *ast.CommentGroup) []Ann {
	if cg == nil {
		return nil
	}
	var out []Ann
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, Prefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		out = append(out, Ann{Verb: fields[0], Args: fields[1:], Pos: c.Pos()})
	}
	return out
}

// Funcs returns the annotations on a function declaration's doc comment.
func Funcs(fd *ast.FuncDecl) []Ann { return Parse(fd.Doc) }

// Has reports whether anns contains verb.
func Has(anns []Ann, verb string) bool {
	for _, a := range anns {
		if a.Verb == verb {
			return true
		}
	}
	return false
}

// ArgsOf returns the first argument of every annotation with the verb —
// e.g. the lock classes of all `requires` annotations on one function.
func ArgsOf(anns []Ann, verb string) []string {
	var out []string
	for _, a := range anns {
		if a.Verb == verb && len(a.Args) > 0 {
			out = append(out, a.Args[0])
		}
	}
	return out
}

// A LineIndex locates statement-level annotations: an annotation applies
// to a line if it sits on that line (trailing comment) or the line
// directly above it.
type LineIndex struct {
	fset   *token.FileSet
	byLine map[int][]Ann
}

// IndexFile builds the line index for one file's comments.
func IndexFile(fset *token.FileSet, f *ast.File) *LineIndex {
	idx := &LineIndex{fset: fset, byLine: make(map[int][]Ann)}
	for _, cg := range f.Comments {
		for _, a := range Parse(cg) {
			line := fset.Position(a.Pos).Line
			idx.byLine[line] = append(idx.byLine[line], a)
		}
	}
	return idx
}

// At returns the annotations with the given verb that apply to the line
// holding pos (same line or the line above).
func (li *LineIndex) At(pos token.Pos, verb string) []Ann {
	line := li.fset.Position(pos).Line
	var out []Ann
	for _, a := range li.byLine[line-1] {
		if a.Verb == verb {
			out = append(out, a)
		}
	}
	for _, a := range li.byLine[line] {
		if a.Verb == verb {
			out = append(out, a)
		}
	}
	return out
}
