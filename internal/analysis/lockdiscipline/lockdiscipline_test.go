package lockdiscipline_test

import (
	"testing"

	"enblogue/internal/analysis/checktest"
	"enblogue/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	checktest.Run(t, "testdata", lockdiscipline.Analyzer, "lockgood", "lockbad")
}
