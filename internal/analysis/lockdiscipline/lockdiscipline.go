// Package lockdiscipline machine-checks the engine's locking protocol.
// The codebase's convention — functions named *Locked assume a caller-held
// mutex, documented only in prose — becomes an annotation-driven contract:
//
//	//enblogue:lock <class> <order>   on a sync.Mutex/RWMutex struct field
//	    declares the field's lock class and its position in the global
//	    acquisition order (lower = outermost);
//	//enblogue:requires <class>       on a function: callers must hold the
//	    class when calling it;
//	//enblogue:acquires <class>       on a function: it takes and releases
//	    the class internally, so callers must NOT hold it, nor hold any
//	    class ordered after it.
//
// The analyzer then enforces, per function body, with a linear held-set
// simulation over the statement sequence:
//
//  1. every *Locked function carries a //enblogue:requires annotation;
//  2. a requires-annotated function is only called where its class is
//     held — by a lexical <field>.Lock() earlier in the body, or because
//     the caller is itself annotated with the class;
//  3. lock classes are acquired in ascending declared order: acquiring an
//     outer class (engine.mu) while holding an inner one (a pair-tracker
//     shard lock) is the deadlock the sharded engine must never reach;
//  4. no class is acquired or (via an acquires-annotated callee)
//     re-entered while already held.
//
// The simulation is deliberately syntactic — it threads one held-set
// through the statement list, inherits nothing into func literals (their
// bodies are analyzed with an empty held-set, as goroutine bodies), and
// treats deferred unlocks as held-until-return. Where the approximation
// is provably too strict, a statement-level `//enblogue:locks-ok <reason>`
// waives a single line, and the reason is the reviewable proof.
// Annotations travel across packages as analysis facts, so core's use of
// the pairs tracker is checked against annotations declared in pairs.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"enblogue/internal/analysis/annotation"
	"enblogue/internal/analysis/driver"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &driver.Analyzer{
	Name:  "lockdiscipline",
	Doc:   "enforce //enblogue:lock/requires/acquires lock-class annotations and global lock ordering",
	Match: func(pkgPath string) bool { return strings.HasPrefix(pkgPath, "enblogue") },
	Run:   run,
}

const (
	classFact = "class\x00" // class\x00<name> -> <order>
	funcFact  = "func\x00"  // func\x00<funckey> -> "requires:<c> acquires:<c> ..."
)

type funcAnn struct {
	requires []string
	acquires []string
}

func (fa funcAnn) empty() bool { return len(fa.requires) == 0 && len(fa.acquires) == 0 }

func (fa funcAnn) encode() string {
	var parts []string
	for _, c := range fa.requires {
		parts = append(parts, "requires:"+c)
	}
	for _, c := range fa.acquires {
		parts = append(parts, "acquires:"+c)
	}
	return strings.Join(parts, " ")
}

func decodeFuncAnn(s string) funcAnn {
	var fa funcAnn
	for _, tok := range strings.Fields(s) {
		if c, ok := strings.CutPrefix(tok, "requires:"); ok {
			fa.requires = append(fa.requires, c)
		} else if c, ok := strings.CutPrefix(tok, "acquires:"); ok {
			fa.acquires = append(fa.acquires, c)
		}
	}
	return fa
}

// funcKey names a function unambiguously across packages:
// "pkgpath.Recv.Name" or "pkgpath.Name".
func funcKey(fn *types.Func) string {
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

type checker struct {
	pass    *driver.Pass
	orders  map[string]int          // lock class -> declared order
	fields  map[*types.Var]string   // local mutex field -> class
	anns    map[*types.Func]funcAnn // local annotated funcs
	waivers map[*ast.File]*annotation.LineIndex
}

func run(pass *driver.Pass) error {
	c := &checker{
		pass:    pass,
		orders:  make(map[string]int),
		fields:  make(map[*types.Var]string),
		anns:    make(map[*types.Func]funcAnn),
		waivers: make(map[*ast.File]*annotation.LineIndex),
	}
	// Imported class orders first, so local re-declarations can be
	// diffed against them.
	for _, kv := range pass.FactsWithPrefix(classFact) {
		if n, err := strconv.Atoi(kv.Value); err == nil {
			c.orders[strings.TrimPrefix(kv.Key, classFact)] = n
		}
	}
	c.collect()
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(f, fd)
			}
		}
	}
	return nil
}

// collect gathers local lock-class fields and function annotations,
// validates them, and exports them as facts.
func (c *checker) collect() {
	pass := c.pass
	// Two passes: every lock class in the package must be known before any
	// function annotation is validated, whatever the file order.
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if st, ok := n.(*ast.StructType); ok {
				c.collectLockFields(st)
			}
			return true
		})
	}
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				c.collectFuncAnn(fd)
			}
			return true
		})
	}
}

func (c *checker) collectLockFields(st *ast.StructType) {
	pass := c.pass
	for _, field := range st.Fields.List {
		anns := append(annotation.Parse(field.Doc), annotation.Parse(field.Comment)...)
		for _, a := range anns {
			if a.Verb != "lock" {
				continue
			}
			if len(a.Args) != 2 {
				pass.Reportf(a.Pos, "enblogue:lock wants <class> <order>, got %q", a.Reason())
				continue
			}
			order, err := strconv.Atoi(a.Args[1])
			if err != nil {
				pass.Reportf(a.Pos, "enblogue:lock order %q is not an integer", a.Args[1])
				continue
			}
			class := a.Args[0]
			if prev, ok := c.orders[class]; ok && prev != order {
				pass.Reportf(a.Pos, "lock class %q re-declared with order %d (previously %d): the acquisition order is global", class, order, prev)
				continue
			}
			c.orders[class] = order
			pass.ExportFact(classFact+class, strconv.Itoa(order))
			for _, name := range field.Names {
				v, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if !isMutexType(v.Type()) {
					pass.Reportf(a.Pos, "enblogue:lock on %s, which is not a sync.Mutex or sync.RWMutex", v.Type())
					continue
				}
				c.fields[v] = class
			}
		}
	}
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func (c *checker) collectFuncAnn(fd *ast.FuncDecl) {
	pass := c.pass
	anns := annotation.Funcs(fd)
	fa := funcAnn{
		requires: annotation.ArgsOf(anns, "requires"),
		acquires: annotation.ArgsOf(anns, "acquires"),
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") && len(fa.requires) == 0 {
		pass.Reportf(fd.Pos(),
			"%s follows the *Locked naming convention but lacks an //enblogue:requires <class> annotation declaring which lock its callers must hold",
			fd.Name.Name)
	}
	if fa.empty() {
		return
	}
	for _, class := range append(append([]string(nil), fa.requires...), fa.acquires...) {
		if _, ok := c.orders[class]; !ok {
			pass.Reportf(fd.Pos(), "%s references lock class %q, which no //enblogue:lock annotation declares", fd.Name.Name, class)
		}
	}
	c.anns[obj] = fa
	pass.ExportFact(funcFact+funcKey(obj), fa.encode())
}

// annFor resolves a callee's annotation, local or via facts.
func (c *checker) annFor(fn *types.Func) (funcAnn, bool) {
	if fa, ok := c.anns[fn]; ok {
		return fa, true
	}
	if fn.Pkg() == nil {
		return funcAnn{}, false
	}
	if enc, ok := c.pass.Fact(fn.Pkg().Path(), funcFact+funcKey(fn)); ok {
		return decodeFuncAnn(enc), true
	}
	return funcAnn{}, false
}

// waived reports whether pos carries a locks-ok waiver.
func (c *checker) waived(f *ast.File, pos token.Pos) bool {
	idx, ok := c.waivers[f]
	if !ok {
		idx = annotation.IndexFile(c.pass.Fset, f)
		c.waivers[f] = idx
	}
	return len(idx.At(pos, "locks-ok")) > 0
}

// --- the held-set simulation ---

type sim struct {
	c    *checker
	file *ast.File
	held []string // lock classes currently held, acquisition order
}

func (c *checker) checkFunc(f *ast.File, fd *ast.FuncDecl) {
	s := &sim{c: c, file: f}
	if obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		if fa, ok := c.anns[obj]; ok {
			s.held = append(s.held, fa.requires...)
		}
	}
	s.stmt(fd.Body)
}

func (s *sim) holding(class string) bool {
	for _, h := range s.held {
		if h == class {
			return true
		}
	}
	return false
}

func (s *sim) push(class string) { s.held = append(s.held, class) }

func (s *sim) pop(class string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i] == class {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// orderViolation returns the first held class whose declared order is
// strictly after (inside) class's, i.e. acquiring class now would invert
// the global order.
func (s *sim) orderViolation(class string) (string, bool) {
	co, ok := s.c.orders[class]
	if !ok {
		return "", false
	}
	for _, h := range s.held {
		if ho, ok := s.c.orders[h]; ok && ho > co {
			return h, true
		}
	}
	return "", false
}

func (s *sim) stmt(n ast.Stmt) {
	switch n := n.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range n.List {
			s.stmt(st)
		}
	case *ast.ExprStmt:
		s.expr(n.X)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			s.expr(e)
		}
		for _, e := range n.Lhs {
			s.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			s.expr(e)
		}
	case *ast.IfStmt:
		s.stmt(n.Init)
		s.expr(n.Cond)
		s.stmt(n.Body)
		s.stmt(n.Else)
	case *ast.ForStmt:
		s.stmt(n.Init)
		if n.Cond != nil {
			s.expr(n.Cond)
		}
		s.stmt(n.Body)
		s.stmt(n.Post)
	case *ast.RangeStmt:
		s.expr(n.X)
		s.stmt(n.Body)
	case *ast.SwitchStmt:
		s.stmt(n.Init)
		if n.Tag != nil {
			s.expr(n.Tag)
		}
		s.stmt(n.Body)
	case *ast.TypeSwitchStmt:
		s.stmt(n.Init)
		s.stmt(n.Assign)
		s.stmt(n.Body)
	case *ast.SelectStmt:
		s.stmt(n.Body)
	case *ast.CaseClause:
		for _, e := range n.List {
			s.expr(e)
		}
		for _, st := range n.Body {
			s.stmt(st)
		}
	case *ast.CommClause:
		s.stmt(n.Comm)
		for _, st := range n.Body {
			s.stmt(st)
		}
	case *ast.LabeledStmt:
		s.stmt(n.Stmt)
	case *ast.IncDecStmt:
		s.expr(n.X)
	case *ast.SendStmt:
		s.expr(n.Chan)
		s.expr(n.Value)
	case *ast.DeferStmt:
		// A deferred unlock releases at return; in the linear model the
		// lock simply stays held for the rest of the body. Any other
		// deferred call is out of line-of-execution — walk its argument
		// expressions only.
		if class, kind, ok := s.lockOp(n.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			_ = class // held until return: no pop
			return
		}
		for _, a := range n.Call.Args {
			s.expr(a)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks;
		// its body (if a func literal) is simulated with an empty
		// held-set by the expr walk below.
		s.expr(n.Call.Fun)
		for _, a := range n.Call.Args {
			s.expr(a)
		}
	}
}

// expr walks an expression in evaluation-ish (pre-)order, applying lock
// events and callee annotations, and simulating func literals in a fresh
// empty-held scope.
func (s *sim) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := &sim{c: s.c, file: s.file}
			inner.stmt(n.Body)
			return false
		case *ast.CallExpr:
			s.call(n)
			// Children (args, nested calls) visited by Inspect.
		}
		return true
	})
}

func (s *sim) call(call *ast.CallExpr) {
	if class, kind, ok := s.lockOp(call); ok {
		switch kind {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if s.waived(call) {
				return
			}
			if s.holding(class) {
				s.report(call, "acquiring lock class %q while already holding it: self-deadlock", class)
				return
			}
			if h, bad := s.orderViolation(class); bad {
				s.report(call, "lock order violation: acquiring %q (order %d) while holding %q (order %d); classes must be acquired outermost-first",
					class, s.c.orders[class], h, s.c.orders[h])
			}
			s.push(class)
		case "Unlock", "RUnlock":
			s.pop(class)
		}
		return
	}

	fn := s.callee(call)
	if fn == nil {
		return
	}
	fa, ok := s.c.annFor(fn)
	if !ok {
		return
	}
	for _, class := range fa.requires {
		if !s.holding(class) && !s.waived(call) {
			s.report(call, "call to %s requires lock class %q, which is not held here: acquire it first or annotate the caller //enblogue:requires %s",
				fn.Name(), class, class)
		}
	}
	for _, class := range fa.acquires {
		if s.waived(call) {
			continue
		}
		if s.holding(class) {
			s.report(call, "call to %s acquires lock class %q, which the caller already holds: self-deadlock", fn.Name(), class)
			continue
		}
		if h, bad := s.orderViolation(class); bad {
			s.report(call, "lock order violation: call to %s acquires %q (order %d) while holding %q (order %d); classes must be acquired outermost-first",
				fn.Name(), class, s.c.orders[class], h, s.c.orders[h])
		}
	}
}

func (s *sim) report(call *ast.CallExpr, format string, args ...any) {
	s.c.pass.Reportf(call.Pos(), format, args...)
}

func (s *sim) waived(call *ast.CallExpr) bool {
	return s.c.waived(s.file, call.Pos())
}

// lockOp recognises <classed-field>.Lock()/Unlock()/... calls and returns
// the lock class and method name.
func (s *sim) lockOp(call *ast.CallExpr) (class, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	v := s.fieldVar(sel.X)
	if v == nil {
		return "", "", false
	}
	class, found := s.c.fields[v]
	if !found {
		return "", "", false
	}
	return class, sel.Sel.Name, true
}

// fieldVar resolves the receiver expression of a lock call to a struct
// field variable, if it is one.
func (s *sim) fieldVar(e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if selection, ok := s.c.pass.TypesInfo.Selections[e]; ok {
			if v, ok := selection.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := s.c.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := s.c.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return s.fieldVar(e.X)
	case *ast.IndexExpr:
		return nil
	}
	return nil
}

// callee resolves a call expression to the invoked named function, if
// statically known.
func (s *sim) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := s.c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
