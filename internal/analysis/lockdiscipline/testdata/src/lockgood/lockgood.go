// Package lockgood is lockdiscipline's clean fixture: correct class
// declarations, a properly annotated *Locked function, ascending
// acquisition order, and a goroutine body that does not inherit locks.
package lockgood

import "sync"

// T carries a two-class lock hierarchy.
type T struct {
	//enblogue:lock outer 10
	mu sync.Mutex
	//enblogue:lock inner 20
	imu sync.Mutex
	n   int
}

// addLocked mutates under the caller's lock.
//
//enblogue:requires outer
func (t *T) addLocked() { t.n++ }

// Add takes the classes in declared order and meets addLocked's contract.
//
//enblogue:acquires outer
//enblogue:acquires inner
func (t *T) Add() {
	t.mu.Lock()
	t.addLocked()
	t.imu.Lock()
	t.imu.Unlock()
	t.mu.Unlock()
}

// DeferredUnlock holds via defer for the rest of the body.
//
//enblogue:acquires outer
func (t *T) DeferredUnlock() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addLocked()
}

// Spawn's goroutine body starts with an empty held-set and takes its own
// lock; holding outer in the parent does not leak in.
//
//enblogue:acquires outer
func (t *T) Spawn() {
	t.mu.Lock()
	t.addLocked()
	t.mu.Unlock()
	go func() {
		t.mu.Lock()
		t.addLocked()
		t.mu.Unlock()
	}()
}

// B mirrors the broker/subscription-index nesting introduced with the
// inverted dispatch index: registration holds the broker's subscription
// lock, then the index lock, in ascending order — while the dispatcher
// takes the index lock (candidate collection) and the broker lock
// (channel sends) as separate, non-overlapping acquisitions.
type B struct {
	//enblogue:lock broker 30
	mu sync.Mutex
	//enblogue:lock subidx 33
	imu  sync.Mutex
	subs int
}

// Register indexes a new subscription under both locks, ascending.
//
//enblogue:acquires broker
//enblogue:acquires subidx
func (b *B) Register() {
	b.mu.Lock()
	b.imu.Lock()
	b.subs++
	b.imu.Unlock()
	b.mu.Unlock()
}

// Dispatch collects under the index lock, releases it, then sends under
// the broker lock: descending class order is fine when the holds never
// overlap.
//
//enblogue:acquires subidx
//enblogue:acquires broker
func (b *B) Dispatch() {
	b.imu.Lock()
	_ = b.subs
	b.imu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// P mirrors the durability hierarchy introduced with the persistence
// layer: the store's snapshot mutex is outermost in the whole process
// (class 5), the engine's ingest gate (persist 7) and bookkeeping lock
// (engine 10) nest inside it, and the WAL lock (wal 15) is innermost —
// rotation happens inside the snapshot gate. The snapshot writer descends
// into the engine; nothing under an engine lock ever reaches back up.
type P struct {
	//enblogue:lock persistSnap 5
	snapMu sync.Mutex
	//enblogue:lock persist 7
	gate sync.RWMutex
	//enblogue:lock engine 10
	mu sync.Mutex
	//enblogue:lock wal 15
	walMu sync.Mutex
	docs  int
}

// Snapshot is the durable-snapshot shape: serialize snapshots, quiesce
// ingest, export under the engine lock, rotate the WAL — all ascending.
//
//enblogue:acquires persistSnap
//enblogue:acquires persist
//enblogue:acquires engine
//enblogue:acquires wal
func (p *P) Snapshot() {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	p.gate.Lock()
	defer p.gate.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.docs
	p.walMu.Lock()
	p.docs = 0
	p.walMu.Unlock()
}

// Record is the ingest shape: the WAL append nests inside the engine
// locks, never the other way around.
//
//enblogue:acquires persist
//enblogue:acquires engine
//enblogue:acquires wal
func (p *P) Record() {
	p.gate.RLock()
	defer p.gate.RUnlock()
	p.mu.Lock()
	p.docs++
	p.walMu.Lock()
	p.walMu.Unlock()
	p.mu.Unlock()
}

// M mirrors the tiered-memory hierarchy introduced with the exact/sketch
// tail: the sweep serializer (pairsSweep 40) is outermost, the tail's tier
// lock (tier 45) sits between it and the per-shard counter locks
// (pairsShard 50). Demotion runs sweep → tier with no shard lock held;
// promotion runs tier → shard, ascending.
type M struct {
	//enblogue:lock pairsSweep 40
	sweepMu sync.Mutex
	//enblogue:lock tier 45
	tmu sync.Mutex
	//enblogue:lock pairsShard 50
	mu   sync.Mutex
	tail int
}

// Demote is the eviction shape: victims are collected and dropped under
// the shard lock, the shard lock is released, then the tail absorbs them
// under the tier lock — sweep and tier never overlap a shard hold.
//
//enblogue:acquires pairsSweep
//enblogue:acquires pairsShard
//enblogue:acquires tier
func (m *M) Demote() {
	m.sweepMu.Lock()
	defer m.sweepMu.Unlock()
	m.mu.Lock()
	_ = m.tail
	m.mu.Unlock()
	m.tmu.Lock()
	m.tail++
	m.tmu.Unlock()
}

// Promote is the readmission shape: candidates are read under the tier
// lock, released, then seeded into the exact tier under each shard lock —
// ascending class order even when the holds do overlap.
//
//enblogue:acquires tier
//enblogue:acquires pairsShard
func (m *M) Promote() {
	m.tmu.Lock()
	m.mu.Lock()
	m.tail--
	m.mu.Unlock()
	m.tmu.Unlock()
}
