// Package lockgood is lockdiscipline's clean fixture: correct class
// declarations, a properly annotated *Locked function, ascending
// acquisition order, and a goroutine body that does not inherit locks.
package lockgood

import "sync"

// T carries a two-class lock hierarchy.
type T struct {
	//enblogue:lock outer 10
	mu sync.Mutex
	//enblogue:lock inner 20
	imu sync.Mutex
	n   int
}

// addLocked mutates under the caller's lock.
//
//enblogue:requires outer
func (t *T) addLocked() { t.n++ }

// Add takes the classes in declared order and meets addLocked's contract.
//
//enblogue:acquires outer
//enblogue:acquires inner
func (t *T) Add() {
	t.mu.Lock()
	t.addLocked()
	t.imu.Lock()
	t.imu.Unlock()
	t.mu.Unlock()
}

// DeferredUnlock holds via defer for the rest of the body.
//
//enblogue:acquires outer
func (t *T) DeferredUnlock() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addLocked()
}

// Spawn's goroutine body starts with an empty held-set and takes its own
// lock; holding outer in the parent does not leak in.
//
//enblogue:acquires outer
func (t *T) Spawn() {
	t.mu.Lock()
	t.addLocked()
	t.mu.Unlock()
	go func() {
		t.mu.Lock()
		t.addLocked()
		t.mu.Unlock()
	}()
}
