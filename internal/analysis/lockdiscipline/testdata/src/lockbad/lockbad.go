// Package lockbad is lockdiscipline's violating fixture: each marked line
// must produce exactly the diagnostic its want regexp describes.
package lockbad

import "sync"

// T mirrors lockgood's hierarchy.
type T struct {
	//enblogue:lock outer 10
	mu sync.Mutex
	//enblogue:lock inner 20
	imu sync.Mutex
	n   int
}

// addLocked follows the naming convention but declares nothing.
func (t *T) addLocked() { t.n++ } // want `addLocked follows the \*Locked naming convention but lacks an //enblogue:requires`

// subLocked declares its contract; Caller below breaks it.
//
//enblogue:requires outer
func (t *T) subLocked() { t.n-- }

// Reenter acquires a class its callers may hold.
//
//enblogue:acquires outer
func (t *T) Reenter() {
	t.mu.Lock()
	t.mu.Unlock()
}

// Caller invokes a requires-annotated function with nothing held.
func (t *T) Caller() {
	t.subLocked() // want `call to subLocked requires lock class "outer", which is not held here`
}

// Inverted acquires outer while holding inner: the order inversion.
func (t *T) Inverted() {
	t.imu.Lock()
	t.mu.Lock() // want `lock order violation: acquiring "outer" \(order 10\) while holding "inner" \(order 20\)`
	t.mu.Unlock()
	t.imu.Unlock()
}

// Twice re-acquires a held class directly.
func (t *T) Twice() {
	t.mu.Lock()
	t.mu.Lock() // want `acquiring lock class "outer" while already holding it: self-deadlock`
	t.mu.Unlock()
	t.mu.Unlock()
}

// ReenterViaCallee re-acquires a held class through an annotated callee.
func (t *T) ReenterViaCallee() {
	t.mu.Lock()
	t.Reenter() // want `call to Reenter acquires lock class "outer", which the caller already holds: self-deadlock`
	t.mu.Unlock()
}

// B mirrors the broker/subscription-index hierarchy.
type B struct {
	//enblogue:lock broker 30
	mu sync.Mutex
	//enblogue:lock subidx 33
	imu sync.Mutex
}

// SendWhileCollecting acquires the broker's subscription lock while still
// holding the index lock: the inversion the dispatch path must never
// commit (deliver collects under subidx, releases, then sends under
// broker).
func (b *B) SendWhileCollecting() {
	b.imu.Lock()
	b.mu.Lock() // want `lock order violation: acquiring "broker" \(order 30\) while holding "subidx" \(order 33\)`
	b.mu.Unlock()
	b.imu.Unlock()
}

// P mirrors the durability hierarchy (persistSnap 5 < persist 7 <
// engine 10 < wal 15).
type P struct {
	//enblogue:lock persistSnap 5
	snapMu sync.Mutex
	//enblogue:lock persist 7
	gate sync.RWMutex
	//enblogue:lock engine 10
	mu sync.Mutex
	//enblogue:lock wal 15
	walMu sync.Mutex
}

// SnapshotUnderEngine starts a snapshot while holding the engine lock:
// the nesting the durability layer must never commit — a concurrent
// Snapshot holding snapMu and waiting on the engine would deadlock.
func (p *P) SnapshotUnderEngine() {
	p.mu.Lock()
	p.snapMu.Lock() // want `lock order violation: acquiring "persistSnap" \(order 5\) while holding "engine" \(order 10\)`
	p.snapMu.Unlock()
	p.mu.Unlock()
}

// GateUnderEngine quiesces ingest from under the engine bookkeeping lock:
// same inversion one layer down (Consume holds the gate, then the engine
// lock; a writer parked on the gate inside the engine lock never wakes).
func (p *P) GateUnderEngine() {
	p.mu.Lock()
	p.gate.Lock() // want `lock order violation: acquiring "persist" \(order 7\) while holding "engine" \(order 10\)`
	p.gate.Unlock()
	p.mu.Unlock()
}

// EngineUnderWAL calls back into the engine from the WAL lock — the
// recorder-must-not-reenter-the-engine contract.
func (p *P) EngineUnderWAL() {
	p.walMu.Lock()
	p.mu.Lock() // want `lock order violation: acquiring "engine" \(order 10\) while holding "wal" \(order 15\)`
	p.mu.Unlock()
	p.walMu.Unlock()
}

// M mirrors the tiered-memory hierarchy (pairsSweep 40 < tier 45 <
// pairsShard 50).
type M struct {
	//enblogue:lock pairsSweep 40
	sweepMu sync.Mutex
	//enblogue:lock tier 45
	tmu sync.Mutex
	//enblogue:lock pairsShard 50
	mu sync.Mutex
}

// DemoteUnderShard feeds the tail while still holding a shard lock: the
// inversion-free but deadlock-prone shape sweepLocked must never commit —
// the tier lock is class 45, below the shard's 50.
func (m *M) DemoteUnderShard() {
	m.mu.Lock()
	m.tmu.Lock() // want `lock order violation: acquiring "tier" \(order 45\) while holding "pairsShard" \(order 50\)`
	m.tmu.Unlock()
	m.mu.Unlock()
}

// SweepUnderTier starts a sweep from inside the tail: promotion must read
// candidates and release the tier lock before ever reaching the sweep
// serializer.
func (m *M) SweepUnderTier() {
	m.tmu.Lock()
	m.sweepMu.Lock() // want `lock order violation: acquiring "pairsSweep" \(order 40\) while holding "tier" \(order 45\)`
	m.sweepMu.Unlock()
	m.tmu.Unlock()
}
