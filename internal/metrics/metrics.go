// Package metrics provides the evaluation measures the experiments report:
// precision/recall at k against injected ground truth, mean reciprocal
// rank, and detection latency. The real datasets of the paper have no
// ground truth; the synthetic generators do, which is what makes these
// numbers computable at all.
package metrics

import (
	"sort"
	"time"
)

// PrecisionAtK returns the fraction of the first k ranked IDs that are
// relevant. Shorter lists are evaluated at their own length; an empty list
// scores 0.
func PrecisionAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(ranked) < k {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, id := range ranked[:k] {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns the fraction of relevant IDs found in the first k
// ranked results (distinct IDs — a duplicate appearance counts once);
// 1 when there are no relevant IDs.
func RecallAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 1
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	seen := make(map[string]bool, k)
	for _, id := range ranked[:k] {
		if relevant[id] {
			seen[id] = true
		}
	}
	return float64(len(seen)) / float64(len(relevant))
}

// MRR returns the mean reciprocal rank of the relevant IDs' first
// appearances: 1/(1+rank of first relevant) averaged over... For a single
// query list, this is simply the reciprocal rank of the best-placed
// relevant ID; 0 when none appears.
func MRR(ranked []string, relevant map[string]bool) float64 {
	for i, id := range ranked {
		if relevant[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// AveragePrecision returns AP: the mean of precision@i over the positions i
// of relevant results, normalised by the number of relevant IDs; 0 when
// there are none.
func AveragePrecision(ranked []string, relevant map[string]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	seen := make(map[string]bool, len(relevant))
	var sum float64
	for i, id := range ranked {
		if relevant[id] && !seen[id] {
			seen[id] = true
			sum += float64(len(seen)) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// Detection records when a given topic ID first reached the top-k ranking.
type Detection struct {
	ID string
	At time.Time
}

// Latency is one ground-truth event's detection outcome.
type Latency struct {
	ID       string
	Detected bool
	// Delay is first-detection time minus event start; meaningless when
	// Detected is false.
	Delay time.Duration
}

// DetectionLatencies matches ground-truth events (ID → start time) against
// first-detection times and returns per-event outcomes sorted by ID.
// Detections before the event start count as zero delay (the detector
// cannot be penalised for the generator's first in-window documents).
func DetectionLatencies(eventStarts map[string]time.Time, detections []Detection) []Latency {
	first := make(map[string]time.Time, len(detections))
	for _, d := range detections {
		if t, ok := first[d.ID]; !ok || d.At.Before(t) {
			first[d.ID] = d.At
		}
	}
	out := make([]Latency, 0, len(eventStarts))
	for id, start := range eventStarts {
		l := Latency{ID: id}
		if at, ok := first[id]; ok {
			l.Detected = true
			if at.After(start) {
				l.Delay = at.Sub(start)
			}
		}
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Summary aggregates latency outcomes.
type Summary struct {
	Events    int
	Detected  int
	MeanDelay time.Duration // over detected events only
	MaxDelay  time.Duration
}

// Summarize aggregates a latency slice.
func Summarize(ls []Latency) Summary {
	s := Summary{Events: len(ls)}
	var total time.Duration
	for _, l := range ls {
		if !l.Detected {
			continue
		}
		s.Detected++
		total += l.Delay
		if l.Delay > s.MaxDelay {
			s.MaxDelay = l.Delay
		}
	}
	if s.Detected > 0 {
		s.MeanDelay = total / time.Duration(s.Detected)
	}
	return s
}

// Rate returns detected/events as a fraction, 1 when there were no events.
func (s Summary) Rate() float64 {
	if s.Events == 0 {
		return 1
	}
	return float64(s.Detected) / float64(s.Events)
}
