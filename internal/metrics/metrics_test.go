package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

var rel = map[string]bool{"a": true, "c": true}

func TestPrecisionAtK(t *testing.T) {
	ranked := []string{"a", "b", "c", "d"}
	tests := []struct {
		k    int
		want float64
	}{
		{1, 1}, {2, 0.5}, {3, 2.0 / 3}, {4, 0.5}, {10, 0.5}, {0, 0},
	}
	for _, tc := range tests {
		if got := PrecisionAtK(ranked, rel, tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P@%d = %v, want %v", tc.k, got, tc.want)
		}
	}
	if got := PrecisionAtK(nil, rel, 5); got != 0 {
		t.Errorf("P@k empty list = %v", got)
	}
}

func TestRecallAtK(t *testing.T) {
	ranked := []string{"a", "b", "c", "d"}
	if got := RecallAtK(ranked, rel, 1); got != 0.5 {
		t.Errorf("R@1 = %v, want 0.5", got)
	}
	if got := RecallAtK(ranked, rel, 4); got != 1 {
		t.Errorf("R@4 = %v, want 1", got)
	}
	if got := RecallAtK(ranked, map[string]bool{}, 4); got != 1 {
		t.Errorf("R with no relevant = %v, want 1", got)
	}
	if got := RecallAtK(nil, rel, 3); got != 0 {
		t.Errorf("R empty = %v, want 0", got)
	}
}

func TestMRR(t *testing.T) {
	if got := MRR([]string{"x", "a"}, rel); got != 0.5 {
		t.Errorf("MRR = %v, want 0.5", got)
	}
	if got := MRR([]string{"x", "y"}, rel); got != 0 {
		t.Errorf("MRR no hit = %v, want 0", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	// relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
	got := AveragePrecision([]string{"a", "b", "c"}, rel)
	if math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("AP = %v, want 5/6", got)
	}
	if got := AveragePrecision([]string{"a"}, map[string]bool{}); got != 0 {
		t.Errorf("AP no relevant = %v, want 0", got)
	}
}

func TestDetectionLatencies(t *testing.T) {
	starts := map[string]time.Time{
		"evt1": t0,
		"evt2": t0.Add(time.Hour),
		"evt3": t0.Add(2 * time.Hour),
	}
	dets := []Detection{
		{ID: "evt1", At: t0.Add(30 * time.Minute)},
		{ID: "evt1", At: t0.Add(10 * time.Minute)}, // earlier duplicate wins
		{ID: "evt2", At: t0.Add(30 * time.Minute)}, // before start → zero delay
	}
	ls := DetectionLatencies(starts, dets)
	if len(ls) != 3 {
		t.Fatalf("latencies = %+v", ls)
	}
	if ls[0].ID != "evt1" || !ls[0].Detected || ls[0].Delay != 10*time.Minute {
		t.Errorf("evt1 = %+v", ls[0])
	}
	if !ls[1].Detected || ls[1].Delay != 0 {
		t.Errorf("evt2 = %+v", ls[1])
	}
	if ls[2].Detected {
		t.Errorf("evt3 = %+v, want undetected", ls[2])
	}
}

func TestSummarize(t *testing.T) {
	ls := []Latency{
		{ID: "a", Detected: true, Delay: 2 * time.Hour},
		{ID: "b", Detected: true, Delay: 4 * time.Hour},
		{ID: "c", Detected: false},
	}
	s := Summarize(ls)
	if s.Events != 3 || s.Detected != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if s.MeanDelay != 3*time.Hour || s.MaxDelay != 4*time.Hour {
		t.Errorf("delays = mean %v max %v", s.MeanDelay, s.MaxDelay)
	}
	if got := s.Rate(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Rate = %v", got)
	}
	if got := (Summary{}).Rate(); got != 1 {
		t.Errorf("empty Rate = %v, want 1", got)
	}
}

// Property: precision and recall are always within [0,1], and recall is
// monotone non-decreasing in k.
func TestMetricBounds(t *testing.T) {
	f := func(ids []string, relIdx []uint8) bool {
		relevant := map[string]bool{}
		for _, i := range relIdx {
			if len(ids) > 0 {
				relevant[ids[int(i)%len(ids)]] = true
			}
		}
		prevRecall := 0.0
		for k := 0; k <= len(ids)+2; k++ {
			p := PrecisionAtK(ids, relevant, k)
			r := RecallAtK(ids, relevant, k)
			if p < 0 || p > 1 || r < 0 || r > 1 {
				return false
			}
			if r < prevRecall-1e-12 {
				return false
			}
			prevRecall = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
